package serve

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/store"
	"repro/internal/tensor"
)

// observeStream builds a deterministic mixed stream of observe batches
// against the fitModel shape (20×16×12): plain appends, cold-start rows in
// mode 0 and mode 1, and chained batches touching the freshly folded rows.
func observeStream(seed int64, n int) [][]core.Observation {
	rng := rand.New(rand.NewSource(seed))
	dims := []int{20, 16, 12} // grows as rows fold in
	var stream [][]core.Observation
	for i := 0; i < n; i++ {
		var batch []core.Observation
		switch i % 4 {
		case 0, 1: // appends to existing cells
			for k := 0; k < 3+rng.Intn(3); k++ {
				batch = append(batch, core.Observation{
					Index: []int{rng.Intn(dims[0]), rng.Intn(dims[1]), rng.Intn(dims[2])},
					Value: rng.Float64(),
				})
			}
		case 2: // a cold-start user: new row of mode 0
			row := dims[0]
			for k := 0; k < 3; k++ {
				batch = append(batch, core.Observation{
					Index: []int{row, rng.Intn(dims[1]), rng.Intn(dims[2])},
					Value: rng.Float64(),
				})
			}
			dims[0]++
		case 3: // a new item plus a rating pairing it with the latest user
			row := dims[1]
			batch = append(batch, core.Observation{
				Index: []int{rng.Intn(dims[0]), row, rng.Intn(dims[2])},
				Value: rng.Float64(),
			})
			batch = append(batch, core.Observation{
				Index: []int{dims[0] - 1, row, rng.Intn(dims[2])},
				Value: rng.Float64(),
			})
			dims[1]++
		}
		stream = append(stream, batch)
	}
	return stream
}

func postObserve(t testing.TB, s *Server, obs []core.Observation) *observeResponse {
	t.Helper()
	resp, err := s.observe(t.Context(), obs)
	if err != nil {
		t.Fatalf("observe: %v", err)
	}
	return resp
}

// predictionGrid scores a deterministic set of cells (spanning folded rows)
// and returns the raw float64 bits.
func predictionGrid(t testing.TB, s *Server) []uint64 {
	t.Helper()
	snap := s.snapshot()
	dims := snap.dims
	rng := rand.New(rand.NewSource(99))
	var bits []uint64
	for i := 0; i < 200; i++ {
		idx := make([]int, len(dims))
		for k, d := range dims {
			idx[k] = rng.Intn(d)
		}
		v, err := snap.pred.PredictChecked(idx)
		if err != nil {
			t.Fatal(err)
		}
		bits = append(bits, math.Float64bits(v))
	}
	// Always include the last row of each mode — the freshest fold-ins.
	for k, d := range dims {
		idx := make([]int, len(dims))
		idx[k] = d - 1
		v, err := snap.pred.PredictChecked(idx)
		if err != nil {
			t.Fatal(err)
		}
		bits = append(bits, math.Float64bits(v))
	}
	return bits
}

func sameBits(t testing.TB, a, b []uint64, what string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: grid sizes differ: %d vs %d", what, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: prediction %d differs: %x vs %x", what, i, a[i], b[i])
		}
	}
}

// TestKillAndRestartBitIdentical is the acceptance criterion: a served
// process journaling observes is killed mid-stream and restarted, and the
// recovered process serves predictions bit-identical to one that never
// crashed.
func TestKillAndRestartBitIdentical(t *testing.T) {
	m := fitModel(t, 7)
	stream := observeStream(41, 12)
	crashAt := 7

	// Reference: one process receives the whole stream.
	ref, _ := testServer(t, Options{Model: m, DataDir: t.TempDir(),
		JournalSync: store.SyncPolicy{Mode: store.SyncAlways}})
	for _, b := range stream {
		postObserve(t, ref, b)
	}

	// Crashing process: receives the first crashAt batches, then dies. With
	// SyncAlways every accepted batch is on disk the moment observe returns,
	// so an un-flushed close loses nothing — the store-level torn-tail tests
	// cover the harder half-written-record case.
	dir := t.TempDir()
	a, err := New(Options{Model: m, DataDir: dir,
		JournalSync: store.SyncPolicy{Mode: store.SyncAlways}})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range stream[:crashAt] {
		postObserve(t, a, b)
	}
	a.Close() // the "kill": no compaction, no graceful anything beyond fsynced records

	// Restart over the same data dir: the journal replays, then the rest of
	// the stream arrives.
	b, err := New(Options{Model: m, DataDir: dir,
		JournalSync: store.SyncPolicy{Mode: store.SyncAlways}})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if got := b.met.journalReplayed.Load(); got != int64(crashAt) {
		t.Fatalf("replayed %d records, want %d", got, crashAt)
	}
	for _, batch := range stream[crashAt:] {
		postObserve(t, b, batch)
	}

	sameBits(t, predictionGrid(t, ref), predictionGrid(t, b), "restarted vs uncrashed")

	// The training sets match too, so future refits stay identical.
	b.online.mu.Lock()
	refNNZ, gotNNZ := ref.online.fitter.NNZ(), b.online.fitter.NNZ()
	b.online.mu.Unlock()
	if refNNZ != gotNNZ {
		t.Fatalf("training sets diverge: %d vs %d entries", refNNZ, gotNNZ)
	}
}

// waitFor polls cond for up to 5s.
func waitFor(t testing.TB, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestCompactionAndRestart: a background refit compacts the journal into
// model + training snapshots; a restart then loads the data-dir model,
// replays nothing, and serves the refit's predictions.
func TestCompactionAndRestart(t *testing.T) {
	m := fitModel(t, 8)
	dir := t.TempDir()
	s, err := New(Options{Model: m, DataDir: dir, RefitAfter: 10,
		JournalSync: store.SyncPolicy{Mode: store.SyncAlways}})
	if err != nil {
		t.Fatal(err)
	}

	for _, b := range observeStream(43, 6) {
		postObserve(t, s, b)
	}
	waitFor(t, "compaction", func() bool { return s.met.compactions.Load() > 0 })
	waitFor(t, "refit end", func() bool {
		s.online.mu.Lock()
		done := !s.online.refitting
		s.online.mu.Unlock()
		return done
	})
	// Batches accepted after the compaction captured its training set have
	// later sequences and survive the rotation — exactly those must replay.
	remaining := s.journal.Len()
	preCrash := predictionGrid(t, s)
	s.Close()

	d, err := store.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !d.HasModel() {
		t.Fatal("compaction left no model in the data dir")
	}

	// Restart — note the stale in-memory base model is superseded by the
	// data dir's persisted one.
	s2, err := New(Options{Model: m, DataDir: dir,
		JournalSync: store.SyncPolicy{Mode: store.SyncAlways}})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.met.journalReplayed.Load(); got != int64(remaining) {
		t.Fatalf("replayed %d records after compaction, want %d (the post-compaction arrivals)", got, remaining)
	}
	if s2.snapshot().path != d.ModelPath() {
		t.Fatalf("restart served %q, want the data-dir model %q", s2.snapshot().path, d.ModelPath())
	}
	sameBits(t, preCrash, predictionGrid(t, s2), "post-compaction restart")
}

// slowRefitModel fits a model whose Refit runs long enough to observe the
// staging window (Tol 0 forces the full iteration budget).
func slowRefitModel(t testing.TB) *core.Model {
	t.Helper()
	rng := rand.New(rand.NewSource(17))
	dims := []int{30, 24, 16}
	x := tensor.NewCoord(dims)
	idx := make([]int, 3)
	for x.NNZ() < 4000 {
		for k, d := range dims {
			idx[k] = rng.Intn(d)
		}
		x.MustAppend(idx, rng.Float64())
	}
	cfg := core.Defaults([]int{3, 3, 3})
	cfg.MaxIters = 300
	cfg.Tol = 0
	cfg.Seed = 17
	m, err := core.Decompose(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestObserveDoesNotBlockBehindRefit: while a background refit owns the
// fitter, observes are staged — accepted immediately, journaled, applied at
// the drain — instead of queueing behind the refit on online.mu.
func TestObserveDoesNotBlockBehindRefit(t *testing.T) {
	m := slowRefitModel(t)
	dir := t.TempDir()
	s, err := New(Options{Model: m, DataDir: dir, RefitAfter: 1,
		JournalSync: store.SyncPolicy{Mode: store.SyncAlways}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Trigger the refit.
	trigger := postObserve(t, s, []core.Observation{{Index: []int{1, 2, 3}, Value: 0.5}})
	if !trigger.RefitTriggered {
		t.Fatal("refit not triggered")
	}

	// A new row arrives while the refit runs: it must come back fast and
	// staged, not block until the refit ends.
	newRow := s.snapshot().dims[0]
	obs := []core.Observation{
		{Index: []int{newRow, 1, 2}, Value: 0.9},
		{Index: []int{newRow, 3, 4}, Value: 0.8},
	}
	start := time.Now()
	resp := postObserve(t, s, obs)
	elapsed := time.Since(start)
	if !resp.Staged {
		t.Skip("refit finished before the observe landed; staging window not observable on this machine")
	}
	if elapsed > 2*time.Second {
		t.Fatalf("staged observe took %v — it blocked behind the refit", elapsed)
	}
	if len(resp.Folded) != 1 || resp.Folded[0].Mode != 0 || resp.Folded[0].Index != newRow {
		t.Fatalf("staged fold plan wrong: %+v", resp.Folded)
	}
	if s.met.stagedObservations.Load() == 0 {
		t.Fatal("staged observations not counted")
	}

	// After the refit drains the queue, the folded row serves.
	waitFor(t, "refit + drain", func() bool {
		s.online.mu.Lock()
		done := !s.online.refitting
		s.online.mu.Unlock()
		return done
	})
	snap := s.snapshot()
	if snap.dims[0] != newRow+1 {
		t.Fatalf("drained fold not published: dims %v", snap.dims)
	}
	if _, err := snap.pred.PredictChecked([]int{newRow, 1, 2}); err != nil {
		t.Fatalf("prediction on drained fold: %v", err)
	}
}

// TestReloadRebasesDataDir: a reload supersedes the journaled observations —
// the data dir is re-based onto the loaded model, and a restart serves it.
func TestReloadRebasesDataDir(t *testing.T) {
	m1, m2 := fitModel(t, 7), fitModel(t, 8)
	modelFile := filepath.Join(t.TempDir(), "m2.ptkm")
	if err := core.SaveModel(modelFile, m2); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	s, err := New(Options{Model: m1, DataDir: dir,
		JournalSync: store.SyncPolicy{Mode: store.SyncAlways}})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range observeStream(47, 4) {
		postObserve(t, s, b)
	}
	if err := s.Reload(modelFile); err != nil {
		t.Fatal(err)
	}
	want := predictionGrid(t, s)
	s.Close()

	s2, err := New(Options{Model: m1, DataDir: dir,
		JournalSync: store.SyncPolicy{Mode: store.SyncAlways}})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.met.journalReplayed.Load(); got != 0 {
		t.Fatalf("replayed %d records after reload re-base, want 0", got)
	}
	sameBits(t, want, predictionGrid(t, s2), "restart after reload")
}

// TestAuthToken: mutating endpoints demand the bearer token; read-only
// endpoints stay open; the token server rejects bad and missing credentials
// with 401 and counts them.
func TestAuthToken(t *testing.T) {
	s, ts := testServer(t, Options{AuthToken: "sekrit"})

	do := func(path, token, body string) int {
		req, err := http.NewRequest(http.MethodPost, ts.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if token != "" {
			req.Header.Set("Authorization", token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	obsBody := `{"observations":[{"index":[1,2,3],"value":0.5}]}`
	if got := do("/v1/observe", "", obsBody); got != http.StatusUnauthorized {
		t.Fatalf("observe without token: %d, want 401", got)
	}
	if got := do("/v1/observe", "Bearer wrong", obsBody); got != http.StatusUnauthorized {
		t.Fatalf("observe with wrong token: %d, want 401", got)
	}
	if got := do("/v1/observe", "Bearer sekrit", obsBody); got != http.StatusOK {
		t.Fatalf("observe with token: %d, want 200", got)
	}
	if got := do("/v1/reload", "", `{}`); got != http.StatusUnauthorized {
		t.Fatalf("reload without token: %d, want 401", got)
	}
	// Read-only traffic needs no credentials.
	if got := do("/v1/predict", "", `{"index":[1,2,3]}`); got != http.StatusOK {
		t.Fatalf("predict without token: %d, want 200", got)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	if got := s.met.authFailures.Load(); got != 3 {
		t.Fatalf("auth failures counted %d, want 3", got)
	}

	// A tokenless server leaves the endpoints open (regression guard for
	// the pass-through path).
	_, open := testServer(t, Options{})
	if got, _ := postJSON(t, open.URL+"/v1/observe", obsBody); got != http.StatusOK {
		t.Fatalf("tokenless observe: %d, want 200", got)
	}
}

// TestHoldoutMetric: the held-out RMSE gauge appears on /metrics and equals
// the served model's RMSE over the file's entries.
func TestHoldoutMetric(t *testing.T) {
	m := fitModel(t, 7)
	rng := rand.New(rand.NewSource(51))
	hold := tensor.NewCoord([]int{20, 16, 12})
	for hold.NNZ() < 150 {
		hold.MustAppend([]int{rng.Intn(20), rng.Intn(16), rng.Intn(12)}, rng.Float64())
	}
	holdPath := filepath.Join(t.TempDir(), "holdout.tns")
	if err := tensor.WriteFile(holdPath, hold); err != nil {
		t.Fatal(err)
	}

	_, ts := testServer(t, Options{Model: m, HoldoutPath: holdPath})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var got float64
	found := false
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "ptucker_holdout_rmse ") {
			if _, err := fmt.Sscanf(line, "ptucker_holdout_rmse %g", &got); err != nil {
				t.Fatal(err)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("ptucker_holdout_rmse missing from /metrics")
	}
	want := m.RMSE(hold)
	if math.Abs(got-want) > 1e-9*math.Abs(want) {
		t.Fatalf("holdout RMSE gauge %g, want %g", got, want)
	}

	// Without a holdout the gauge is absent entirely.
	_, plain := testServer(t, Options{Model: m})
	resp2, err := http.Get(plain.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body2, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(body2), "ptucker_holdout_rmse") {
		t.Fatal("holdout gauge exposed without a holdout set")
	}
}

// TestObserveJournalsBeforeApply: with a data dir, a batch is on disk before
// the response returns (SyncAlways), and the journaled bytes replay to the
// same observations.
func TestObserveJournalsBeforeApply(t *testing.T) {
	dir := t.TempDir()
	s, _ := testServer(t, Options{DataDir: dir,
		JournalSync: store.SyncPolicy{Mode: store.SyncAlways}})
	obs := []core.Observation{
		{Index: []int{1, 2, 3}, Value: 0.25},
		{Index: []int{4, 5, 6}, Value: 0.75},
	}
	postObserve(t, s, obs)

	j, err := store.OpenJournal(filepath.Join(dir, store.JournalFile), 3, store.SyncPolicy{Mode: store.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if j.Len() != 1 {
		t.Fatalf("journal has %d records, want 1", j.Len())
	}
	if err := j.Replay(func(r store.Record) error {
		if len(r.Observations) != 2 {
			return fmt.Errorf("record has %d observations", len(r.Observations))
		}
		for i, o := range r.Observations {
			if math.Float64bits(o.Value) != math.Float64bits(obs[i].Value) {
				return fmt.Errorf("observation %d value differs", i)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// A rejected batch must NOT be journaled: plan validation precedes the
	// append.
	if _, err := s.observe(t.Context(), []core.Observation{{Index: []int{999, 0, 0}, Value: 1}}); err == nil {
		t.Fatal("unplaceable batch accepted")
	}
	if got := s.met.journalAppends.Load(); got != 1 {
		t.Fatalf("journal appends %d after a rejected batch, want 1", got)
	}
}

// TestWatchDoesNotRebaseDataDirOnStartup guards the -watch × -data-dir
// interaction: the watcher's startup reconcile must NOT reload the stale
// -model file over a data directory that holds newer durable state (that
// would re-base the dir and wipe the journaled online learning). A genuine
// deploy — the file changing after startup — still reloads.
func TestWatchDoesNotRebaseDataDirOnStartup(t *testing.T) {
	m1, m2 := fitModel(t, 7), fitModel(t, 8)
	modelFile := filepath.Join(t.TempDir(), "m1.ptkm")
	if err := core.SaveModel(modelFile, m1); err != nil {
		t.Fatal(err)
	}

	// A data dir with newer durable state: a persisted model and one
	// journaled observation batch.
	dirPath := t.TempDir()
	d, err := store.OpenDir(dirPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.SaveModel(d.ModelPath(), m2); err != nil {
		t.Fatal(err)
	}
	j, err := store.OpenJournal(d.JournalPath(), 3, store.SyncPolicy{Mode: store.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append([]core.Observation{{Index: []int{1, 2, 3}, Value: 0.5}}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	s, err := New(Options{ModelPath: modelFile, DataDir: dirPath,
		JournalSync: store.SyncPolicy{Mode: store.SyncAlways}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.snapshot().path != d.ModelPath() {
		t.Fatalf("serving %q, want the data-dir model", s.snapshot().path)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go s.WatchModel(ctx, 2*time.Millisecond)

	time.Sleep(50 * time.Millisecond)
	if got := s.met.reloads.Load(); got != 0 {
		t.Fatalf("watcher reloaded %d times at startup; the stale -model must not re-base the data dir", got)
	}
	if got := s.journal.Len(); got != 1 {
		t.Fatalf("journal has %d records after watcher startup, want 1 (untouched)", got)
	}

	// A real deploy — the watched file changes — still reloads (and re-bases).
	if err := core.SaveModel(modelFile, m2); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "deploy reload", func() bool { return s.met.reloads.Load() > 0 })
	waitFor(t, "journal re-base", func() bool { return s.journal.Len() == 0 })
}

// TestSizeTriggeredCompaction: with refits disabled, a journal crossing
// CompactBytes is compacted in the background — the grown model and the
// accumulated training set are snapshotted without a refit, the covered
// records rotate out, and a restart over the directory replays nothing yet
// serves bit-identical predictions.
func TestSizeTriggeredCompaction(t *testing.T) {
	m := fitModel(t, 9)
	dir := t.TempDir()
	s, err := New(Options{Model: m, DataDir: dir, CompactBytes: 1,
		JournalSync: store.SyncPolicy{Mode: store.SyncAlways}})
	if err != nil {
		t.Fatal(err)
	}

	// One batch (with a fold-in, so the persisted model must carry the grown
	// row) pushes the journal past the 1-byte threshold.
	stream := observeStream(47, 8)
	for _, b := range stream {
		postObserve(t, s, b)
	}
	waitFor(t, "size-triggered compaction", func() bool { return s.met.compactions.Load() > 0 })
	if got := s.met.refits.Load(); got != 0 {
		t.Fatalf("%d refits ran; size-triggered compaction must not refit", got)
	}
	// Let any in-flight compaction settle before closing (compactBusy is the
	// single-flight latch).
	waitFor(t, "compaction settled", func() bool { return !s.compactBusy.Load() })

	preClose := predictionGrid(t, s)
	s.online.mu.Lock()
	preNNZ := s.online.fitter.NNZ()
	s.online.mu.Unlock()
	s.Close()

	d, err := store.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !d.HasModel() {
		t.Fatal("size-triggered compaction left no model in the data dir")
	}
	x, covered, err := d.TrainingSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if x == nil || covered == 0 {
		t.Fatalf("no covered training snapshot after compaction (covered=%d)", covered)
	}

	// Restart: the persisted model supersedes the stale in-memory base, and
	// only post-compaction records (if any) replay.
	s2, err := New(Options{Model: m, DataDir: dir,
		JournalSync: store.SyncPolicy{Mode: store.SyncAlways}})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	// Fewer records replay than were observed: the compaction's covered
	// prefix comes back through the persisted model + training snapshot, not
	// the journal.
	if got := s2.met.journalReplayed.Load(); got >= int64(len(stream)) {
		t.Fatalf("replayed %d records, want fewer than the %d observed (compaction covered a prefix)", got, len(stream))
	}
	sameBits(t, preClose, predictionGrid(t, s2), "restart after size-triggered compaction")
	s2.online.mu.Lock()
	gotNNZ := s2.online.fitter.NNZ()
	s2.online.mu.Unlock()
	if gotNNZ != preNNZ {
		t.Fatalf("training set diverged across compaction restart: %d vs %d entries", gotNNZ, preNNZ)
	}
}

// TestAgeTriggeredCompaction: with refits and size triggers disabled, a
// journal whose oldest uncovered record outlives CompactAge is compacted in
// the background, and a restart over the directory replays nothing yet
// serves bit-identical predictions.
func TestAgeTriggeredCompaction(t *testing.T) {
	m := fitModel(t, 9)
	dir := t.TempDir()
	s, err := New(Options{Model: m, DataDir: dir, CompactAge: 20 * time.Millisecond,
		JournalSync: store.SyncPolicy{Mode: store.SyncAlways}})
	if err != nil {
		t.Fatal(err)
	}

	stream := observeStream(49, 4)
	for _, b := range stream {
		postObserve(t, s, b)
	}
	if got := s.met.compactions.Load(); got != 0 && s.journal.Len() == 0 {
		// Not an error — just means the ticker beat the last observe — but the
		// interesting path is records sitting in the journal until they age out.
		t.Logf("compaction already ran mid-stream (%d)", got)
	}
	waitFor(t, "age-triggered compaction", func() bool { return s.met.compactions.Load() > 0 })
	if got := s.met.refits.Load(); got != 0 {
		t.Fatalf("%d refits ran; age-triggered compaction must not refit", got)
	}
	// Every record eventually ages out and rotates away; the clock disarms.
	waitFor(t, "journal fully covered", func() bool {
		return s.journal.Len() == 0 && s.oldestUncovered.Load() == 0
	})
	waitFor(t, "compaction settled", func() bool { return !s.compactBusy.Load() })

	preClose := predictionGrid(t, s)
	s.online.mu.Lock()
	preNNZ := s.online.fitter.NNZ()
	s.online.mu.Unlock()
	s.Close()

	// Restart without CompactAge: the persisted model + training snapshot come
	// back as-is and the emptied journal replays nothing.
	s2, err := New(Options{Model: m, DataDir: dir,
		JournalSync: store.SyncPolicy{Mode: store.SyncAlways}})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.met.journalReplayed.Load(); got != 0 {
		t.Fatalf("replayed %d records after an age compaction covered everything, want 0", got)
	}
	sameBits(t, preClose, predictionGrid(t, s2), "restart after age-triggered compaction")
	s2.online.mu.Lock()
	gotNNZ := s2.online.fitter.NNZ()
	s2.online.mu.Unlock()
	if gotNNZ != preNNZ {
		t.Fatalf("training set diverged across compaction restart: %d vs %d entries", gotNNZ, preNNZ)
	}
}

// TestCompactAgeDisabledKeepsJournal: without CompactAge nothing ever ages
// out — the journal keeps every record no matter how long it sits.
func TestCompactAgeDisabledKeepsJournal(t *testing.T) {
	m := fitModel(t, 9)
	s, _ := testServer(t, Options{Model: m, DataDir: t.TempDir(),
		JournalSync: store.SyncPolicy{Mode: store.SyncAlways}})
	for _, b := range observeStream(50, 3) {
		postObserve(t, s, b)
	}
	time.Sleep(30 * time.Millisecond)
	if got := s.met.compactions.Load(); got != 0 {
		t.Fatalf("%d compactions ran with CompactAge=0", got)
	}
	if got := s.journal.Len(); got != 3 {
		t.Fatalf("journal has %d records, want 3 (nothing rotated)", got)
	}
}

// TestCompactBytesDisabledKeepsJournal: without CompactBytes the journal of a
// refit-less server only grows — the regression this feature closes — and
// with it the journal stays bounded by rotation.
func TestCompactBytesDisabledKeepsJournal(t *testing.T) {
	m := fitModel(t, 9)
	s, _ := testServer(t, Options{Model: m, DataDir: t.TempDir(),
		JournalSync: store.SyncPolicy{Mode: store.SyncAlways}})
	for _, b := range observeStream(48, 6) {
		postObserve(t, s, b)
	}
	if got := s.met.compactions.Load(); got != 0 {
		t.Fatalf("%d compactions ran with CompactBytes=0", got)
	}
	if got := s.journal.Len(); got != 6 {
		t.Fatalf("journal has %d records, want 6 (nothing rotated)", got)
	}
}

// TestStartupReplayRetriggersRefit: a server that accumulated observations
// past -refit-after but died before refitting must not strand them — the
// restart counts replayed observations against the threshold and resumes the
// background refit immediately, instead of waiting for one more live batch.
func TestStartupReplayRetriggersRefit(t *testing.T) {
	m := fitModel(t, 11)
	dir := t.TempDir()

	// First life: refits disabled, so every observation lands only in the
	// journal and the in-memory fitter.
	a, err := New(Options{Model: m, DataDir: dir,
		JournalSync: store.SyncPolicy{Mode: store.SyncAlways}})
	if err != nil {
		t.Fatal(err)
	}
	batches := observeStream(61, 5)
	total := 0
	for _, b := range batches {
		postObserve(t, a, b)
		total += len(b)
	}
	if got := a.met.refits.Load(); got != 0 {
		t.Fatalf("%d refits ran with RefitAfter=0", got)
	}
	a.Close()

	// Second life: the replayed count alone crosses the threshold.
	b, err := New(Options{Model: m, DataDir: dir, RefitAfter: total,
		JournalSync: store.SyncPolicy{Mode: store.SyncAlways}})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if got := b.met.journalReplayed.Load(); got != int64(len(batches)) {
		t.Fatalf("replayed %d records, want %d", got, len(batches))
	}
	waitFor(t, "startup-retriggered refit", func() bool { return b.met.refits.Load() >= 1 })
	waitFor(t, "refit end", func() bool {
		b.online.mu.Lock()
		done := !b.online.refitting && b.online.pending == 0
		b.online.mu.Unlock()
		return done
	})

	// The refit compacted: its model snapshot covers the journal, and the
	// pending counter reset, so the next observation starts a fresh window.
	d, err := store.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !d.HasModel() {
		t.Fatal("startup refit left no compacted model in the data dir")
	}
	resp := postObserve(t, b, []core.Observation{{Index: []int{1, 2, 3}, Value: 0.5}})
	if resp.RefitTriggered {
		t.Fatal("one observation after a fresh refit re-triggered; pending was not reset")
	}
}
