package serve

import (
	"context"
	"errors"
	"log/slog"
	"os"
	"time"
)

// WatchModel polls the server's configured ModelPath every interval and
// hot-reloads the model whenever the file's mtime or size changes — so
// "deploy by copying a file over the old one" works with no SIGHUP and no
// /v1/reload call. It blocks until ctx is cancelled (run it on its own
// goroutine) and returns ctx.Err(), or an immediate error if the server has
// no model path to watch.
//
// The first successful stat always reloads: a deploy that lands between
// server start and watcher start is reconciled instead of missed, at the
// cost of one redundant reload on startup. The exception is a durable
// server (DataDir set): every reload re-bases the data directory — journal
// reset, sidecar cleared — so a reconcile reload of an unchanged file would
// wipe journaled online learning for nothing (and when the directory's own
// model supersedes ModelPath, the watched file is by definition older
// state). There the watcher arms itself with the file's current stat
// instead, so only a genuinely new deploy (the file changing after
// startup) triggers a reload. Reload failures (e.g. a half-written file
// copied without an atomic rename) leave the old model serving and are
// retried every tick until a good file lands, so the watcher self-heals. A
// vanished file is treated the same way: keep serving, keep polling.
func (s *Server) WatchModel(ctx context.Context, interval time.Duration) error {
	if s.opts.ModelPath == "" {
		return errors.New("serve: no model path to watch")
	}
	if interval <= 0 {
		interval = time.Second
	}

	var lastMod time.Time // zero: the first stat never matches, forcing the reconcile reload
	var lastSize int64 = -1
	if s.dir != nil {
		// Arm with the stat captured at construction time (see New), so a
		// deploy that landed during startup still reads as a change.
		lastMod, lastSize = s.watchMod, s.watchSize
	}

	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
			fi, err := os.Stat(s.opts.ModelPath)
			if err != nil {
				continue
			}
			if fi.ModTime().Equal(lastMod) && fi.Size() == lastSize {
				continue
			}
			if err := s.Reload(""); err != nil {
				// Counted like any other failed reload; stat is left stale
				// so the next tick retries. Logged too — this used to bump
				// the counter silently while every other reload failure
				// path said why.
				s.met.errors("reload").Add(1)
				s.event(slog.LevelWarn, "watched model reload failed",
					"model", s.opts.ModelPath, "error", err, "detail", "old model keeps serving; retrying next tick")
				continue
			}
			lastMod, lastSize = fi.ModTime(), fi.Size()
		}
	}
}
