package serve

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// TestDefaultShards pins the auto-scaling rule: half the procs, at least one,
// capped.
func TestDefaultShards(t *testing.T) {
	cases := []struct{ procs, want int }{
		{1, 1}, {2, 1}, {4, 2}, {8, 4}, {16, 8}, {64, 16}, {128, 16},
	}
	for _, tc := range cases {
		if got := defaultShards(tc.procs); got != tc.want {
			t.Errorf("defaultShards(%d) = %d, want %d", tc.procs, got, tc.want)
		}
	}
}

// TestShardedCoalescerAnswersMatchUnderLoad: many distinct predictions race
// into batches spread across 4 shards; every caller must get exactly its own
// answer, and — since submission round-robins — every shard must have
// flushed at least once (the fairness guarantee). Run with -race.
func TestShardedCoalescerAnswersMatchUnderLoad(t *testing.T) {
	m := fitModel(t, 7)
	const shards = 4
	s, err := New(Options{Model: m, MaxBatch: 16, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.Shards(); got != shards {
		t.Fatalf("Shards() = %d, want %d", got, shards)
	}
	p := core.NewPredictor(m)
	dims := p.Dims()
	rng := rand.New(rand.NewSource(11))

	type job struct {
		idx  []int
		want float64
	}
	jobs := make([]job, 600)
	for i := range jobs {
		idx := make([]int, len(dims))
		for k, d := range dims {
			idx[k] = rng.Intn(d)
		}
		jobs[i] = job{idx, p.Predict(idx)}
	}

	// Sustained load: several waves, so shards keep flushing rather than
	// draining one burst.
	errs := make(chan string, len(jobs))
	for wave := 0; wave < 3; wave++ {
		var wg sync.WaitGroup
		for _, j := range jobs {
			wg.Add(1)
			go func(j job) {
				defer wg.Done()
				got, err := s.coal.predict(context.Background(), j.idx)
				if err != nil {
					errs <- err.Error()
					return
				}
				if math.Float64bits(got) != math.Float64bits(j.want) {
					errs <- fmt.Sprintf("coalesced %v = %v want %v", j.idx, got, j.want)
				}
			}(j)
		}
		wg.Wait()
	}
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}

	var flushes, coalesced int64
	for i := 0; i < shards; i++ {
		f := s.met.shardFlushes[i].Load()
		if f == 0 {
			t.Errorf("shard %d never flushed under sustained load", i)
		}
		flushes += f
		coalesced += s.met.shardCoalesced[i].Load()
	}
	if flushes != s.met.flushes.Load() {
		t.Errorf("per-shard flushes sum to %d, total counter says %d", flushes, s.met.flushes.Load())
	}
	if coalesced != int64(3*len(jobs)) {
		t.Errorf("per-shard coalesced sum to %d, want %d", coalesced, 3*len(jobs))
	}
	if s.met.coalesced.Load() != coalesced {
		t.Errorf("coalesced counter %d != per-shard sum %d", s.met.coalesced.Load(), coalesced)
	}
}

// TestShardedReloadWhileFlushing: reload between two models continuously
// while all shards are mid-flush; every answer must be exactly one model's —
// a flush that mixed snapshots would produce a third value. Run with -race.
func TestShardedReloadWhileFlushing(t *testing.T) {
	mA, mB := fitModel(t, 7), fitModel(t, 8)
	s, err := New(Options{Model: mA, MaxBatch: 8, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	idx := []int{3, 5, 2}
	wantA := math.Float64bits(core.NewPredictor(mA).Predict(idx))
	wantB := math.Float64bits(core.NewPredictor(mB).Predict(idx))
	if wantA == wantB {
		t.Fatal("fixture models predict identically; test cannot observe the swap")
	}

	stop := make(chan struct{})
	var swapper sync.WaitGroup
	swapper.Add(1)
	go func() {
		defer swapper.Done()
		models := []*core.Model{mB, mA}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			s.install(models[i%2])
		}
	}()

	const clients = 16
	const perClient = 200
	errs := make(chan string, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				got, err := s.coal.predict(context.Background(), idx)
				if err != nil {
					errs <- err.Error()
					return
				}
				if bits := math.Float64bits(got); bits != wantA && bits != wantB {
					errs <- fmt.Sprintf("answer %x is neither model A's %x nor model B's %x", bits, wantA, wantB)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	swapper.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}

// TestShardedShutdownDrain: Close while predictions are queued on every
// shard must fail each waiter with ErrServerClosed (or answer it), never
// hang. Run with -race.
func TestShardedShutdownDrain(t *testing.T) {
	m := fitModel(t, 7)
	s, err := New(Options{Model: m, MaxBatch: 4, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 80; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = s.coal.predict(context.Background(), []int{1, 2, 3})
		}()
	}
	s.Close()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("queued predictions did not drain after Close")
	}
}

// TestShardedCancelledCallerDoesNotWedgeShard: a caller whose context
// expires abandons its wait; the shard must complete the flush and keep
// serving later callers.
func TestShardedCancelledCallerDoesNotWedgeShard(t *testing.T) {
	m := fitModel(t, 7)
	s, err := New(Options{Model: m, MaxBatch: 8, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i := 0; i < 20; i++ {
		if _, err := s.coal.predict(ctx, []int{1, 2, 3}); err == nil {
			t.Fatal("cancelled predict returned no error")
		}
	}
	// The shards must still answer live callers.
	p := core.NewPredictor(m)
	want := p.Predict([]int{3, 5, 2})
	for i := 0; i < 8; i++ {
		got, err := s.coal.predict(context.Background(), []int{3, 5, 2})
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("post-cancel predict = %v want %v", got, want)
		}
	}
}

// TestShardMetricsExposed: /metrics reports the per-shard counters and the
// sampled queue-depth gauge for every shard.
func TestShardMetricsExposed(t *testing.T) {
	s, ts := testServer(t, Options{MaxBatch: 8, Shards: 3})

	// Push one prediction through so shard counters are live.
	if _, err := s.coal.predict(context.Background(), []int{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	text := string(body)
	for i := 0; i < 3; i++ {
		for _, metric := range []string{"ptucker_shard_flushes_total", "ptucker_shard_coalesced_total", "ptucker_shard_queue_depth"} {
			want := fmt.Sprintf("%s{shard=\"%d\"}", metric, i)
			if !strings.Contains(text, want) {
				t.Errorf("metrics output missing %q", want)
			}
		}
	}
	// Counters across shards must reconcile with the aggregate.
	var sum int64
	for i := range s.met.shardCoalesced {
		sum += s.met.shardCoalesced[i].Load()
	}
	if sum != s.met.coalesced.Load() {
		t.Errorf("per-shard coalesced sum %d != aggregate %d", sum, s.met.coalesced.Load())
	}
}
