package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

func getJSON(t testing.TB, url string, dst interface{}) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		t.Fatal(err)
	}
}

// TestObserveFoldInServesImmediately is the cold-start flow end to end:
// /v1/observe folds a new user in, and predictions plus exclusion-aware
// recommendations for them work on the very next request — no refit, no
// reload. The fixture model has dims [20 16 12].
func TestObserveFoldInServesImmediately(t *testing.T) {
	_, ts := testServer(t, Options{})

	// The new user (row 20 of mode 0) rated items 1 and 3.
	status, body := postJSON(t, ts.URL+"/v1/observe",
		`{"observations":[
			{"index":[20,1,2],"value":0.9},
			{"index":[20,3,4],"value":0.8},
			{"index":[20,1,5],"value":0.7}
		]}`)
	if status != http.StatusOK {
		t.Fatalf("observe: %d %s", status, body)
	}
	var or observeResponse
	if err := json.Unmarshal(body, &or); err != nil {
		t.Fatal(err)
	}
	if len(or.Folded) != 1 || or.Folded[0].Mode != 0 || or.Folded[0].Index != 20 || or.Folded[0].NNZ != 3 {
		t.Fatalf("folded = %+v, want one fold of mode 0 row 20 with 3 observations", or.Folded)
	}
	if or.Appended != 0 {
		t.Fatalf("appended = %d, want 0", or.Appended)
	}
	if fmt.Sprint(or.Dims) != fmt.Sprint([]int{21, 16, 12}) {
		t.Fatalf("dims = %v, want [21 16 12]", or.Dims)
	}

	// Predict for the folded-in user.
	status, body = postJSON(t, ts.URL+"/v1/predict", `{"index":[20,5,5]}`)
	if status != http.StatusOK {
		t.Fatalf("predict on new row: %d %s", status, body)
	}

	// Recommend for them, excluding what they already rated.
	status, body = postJSON(t, ts.URL+"/v1/recommend",
		`{"query":[20,0,2],"mode":1,"k":16,"exclude":[1,3]}`)
	if status != http.StatusOK {
		t.Fatalf("recommend on new row: %d %s", status, body)
	}
	var rr recommendResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if len(rr.Recs) != 14 {
		t.Fatalf("got %d recs, want 14 (16 items minus 2 excluded)", len(rr.Recs))
	}
	for _, r := range rr.Recs {
		if r.Index == 1 || r.Index == 3 {
			t.Fatalf("recommendation echoes excluded item %d", r.Index)
		}
	}

	// /healthz reports the grown shape.
	var health statusResponse
	getJSON(t, ts.URL+"/healthz", &health)
	if fmt.Sprint(health.Dims) != fmt.Sprint([]int{21, 16, 12}) {
		t.Fatalf("healthz dims = %v, want [21 16 12]", health.Dims)
	}
}

// TestObserveChainedNewRows: one request can introduce a new user AND a new
// item; the observation pairing them lands in whichever row is folded last.
func TestObserveChainedNewRows(t *testing.T) {
	_, ts := testServer(t, Options{})
	status, body := postJSON(t, ts.URL+"/v1/observe",
		`{"observations":[
			{"index":[20,1,2],"value":0.9},
			{"index":[4,16,0],"value":0.6},
			{"index":[20,16,1],"value":0.8},
			{"index":[2,2,2],"value":0.4}
		]}`)
	if status != http.StatusOK {
		t.Fatalf("observe: %d %s", status, body)
	}
	var or observeResponse
	if err := json.Unmarshal(body, &or); err != nil {
		t.Fatal(err)
	}
	if or.Appended != 1 {
		t.Fatalf("appended = %d, want 1 (the fully in-range observation)", or.Appended)
	}
	if len(or.Folded) != 2 {
		t.Fatalf("folded = %+v, want the new user then the new item", or.Folded)
	}
	if or.Folded[0].Mode != 0 || or.Folded[0].Index != 20 || or.Folded[0].NNZ != 1 {
		t.Fatalf("first fold = %+v, want mode 0 row 20 with 1 obs (the user/item pair defers)", or.Folded[0])
	}
	if or.Folded[1].Mode != 1 || or.Folded[1].Index != 16 || or.Folded[1].NNZ != 2 {
		t.Fatalf("second fold = %+v, want mode 1 row 16 with 2 obs (incl. the pair)", or.Folded[1])
	}
	if fmt.Sprint(or.Dims) != fmt.Sprint([]int{21, 17, 12}) {
		t.Fatalf("dims = %v, want [21 17 12]", or.Dims)
	}
}

// TestObserveRejectsUnplaceable: a gap in the new indices fails the whole
// batch with 400 and leaves the served model untouched.
func TestObserveRejectsUnplaceable(t *testing.T) {
	_, ts := testServer(t, Options{})
	cases := []struct {
		name, body string
	}{
		{"gap", `{"observations":[{"index":[25,0,0],"value":1}]}`},
		{"two new coords only", `{"observations":[{"index":[20,16,0],"value":1}]}`},
		{"negative", `{"observations":[{"index":[-1,0,0],"value":1}]}`},
		{"wrong order", `{"observations":[{"index":[1,2],"value":1}]}`},
		{"empty", `{"observations":[]}`},
	}
	for _, tc := range cases {
		status, body := postJSON(t, ts.URL+"/v1/observe", tc.body)
		if status != http.StatusBadRequest {
			t.Fatalf("%s: status %d (%s), want 400", tc.name, status, body)
		}
	}
	var health statusResponse
	getJSON(t, ts.URL+"/healthz", &health)
	if fmt.Sprint(health.Dims) != fmt.Sprint([]int{20, 16, 12}) {
		t.Fatalf("rejected observes changed the model: dims %v", health.Dims)
	}
}

// TestObserveTriggersBackgroundRefit: after RefitAfter observations the
// server refits in the background and swaps the result in.
func TestObserveTriggersBackgroundRefit(t *testing.T) {
	s, ts := testServer(t, Options{RefitAfter: 3})
	status, body := postJSON(t, ts.URL+"/v1/observe",
		`{"observations":[
			{"index":[1,1,1],"value":0.5},
			{"index":[2,2,2],"value":0.6},
			{"index":[3,3,3],"value":0.7}
		]}`)
	if status != http.StatusOK {
		t.Fatalf("observe: %d %s", status, body)
	}
	var or observeResponse
	if err := json.Unmarshal(body, &or); err != nil {
		t.Fatal(err)
	}
	if !or.RefitTriggered {
		t.Fatal("refit not triggered at the RefitAfter threshold")
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.met.refits.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("background refit never published (errors: %d)", s.met.refitErrors.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The refit's snapshot is what serves now; a predict still works.
	status, body = postJSON(t, ts.URL+"/v1/predict", `{"index":[1,1,1]}`)
	if status != http.StatusOK {
		t.Fatalf("predict after refit: %d %s", status, body)
	}
}

// TestObserveConcurrentWithPredict hammers /v1/predict and /v1/recommend
// while /v1/observe grows the model one fold-in at a time — the -race
// check for the snapshot-swap discipline on the online path.
func TestObserveConcurrentWithPredict(t *testing.T) {
	_, ts := testServer(t, Options{RefitAfter: 7})
	const folds = 8
	stop := make(chan struct{})
	var wg sync.WaitGroup

	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Only ever address the original shape; it can only grow.
				idx := fmt.Sprintf(`{"index":[%d,%d,%d]}`, rng.Intn(20), rng.Intn(16), rng.Intn(12))
				if status, body := postJSON(t, ts.URL+"/v1/predict", idx); status != http.StatusOK {
					panic(fmt.Sprintf("predict: %d %s", status, body))
				}
				q := fmt.Sprintf(`{"query":[%d,0,%d],"mode":1,"k":5,"exclude":[0,1]}`, rng.Intn(20), rng.Intn(12))
				if status, body := postJSON(t, ts.URL+"/v1/recommend", q); status != http.StatusOK {
					panic(fmt.Sprintf("recommend: %d %s", status, body))
				}
			}
		}(int64(g))
	}

	// Sequential observer: folds a new user each round (the next new row is
	// known because this goroutine is the only writer).
	for i := 0; i < folds; i++ {
		row := 20 + i
		b := fmt.Sprintf(`{"observations":[
			{"index":[%d,1,2],"value":0.5},
			{"index":[%d,2,3],"value":0.6}
		]}`, row, row)
		status, body := postJSON(t, ts.URL+"/v1/observe", b)
		if status != http.StatusOK {
			t.Fatalf("observe %d: %d %s", i, status, body)
		}
	}
	close(stop)
	wg.Wait()

	var health statusResponse
	getJSON(t, ts.URL+"/healthz", &health)
	if health.Dims[0] != 20+folds {
		t.Fatalf("dims after %d fold-ins = %v", folds, health.Dims)
	}
}

// TestReloadDropsOnlineState: an external reload supersedes everything
// observed so far — the shape snaps back to the loaded file's.
func TestReloadDropsOnlineState(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.ptkm")
	if err := core.SaveModel(path, fitModel(t, 7)); err != nil {
		t.Fatal(err)
	}
	_, ts := testServer(t, Options{ModelPath: path})

	status, body := postJSON(t, ts.URL+"/v1/observe", `{"observations":[{"index":[20,1,2],"value":0.9}]}`)
	if status != http.StatusOK {
		t.Fatalf("observe: %d %s", status, body)
	}
	var health statusResponse
	getJSON(t, ts.URL+"/healthz", &health)
	if health.Dims[0] != 21 {
		t.Fatalf("fold-in did not grow the served model: dims %v", health.Dims)
	}

	if status, body = postJSON(t, ts.URL+"/v1/reload", `{}`); status != http.StatusOK {
		t.Fatalf("reload: %d %s", status, body)
	}
	getJSON(t, ts.URL+"/healthz", &health)
	if health.Dims[0] != 20 {
		t.Fatalf("reload kept online growth: dims %v", health.Dims)
	}

	// Observing again starts a fresh fitter over the reloaded model.
	if status, body = postJSON(t, ts.URL+"/v1/observe", `{"observations":[{"index":[20,1,2],"value":0.9}]}`); status != http.StatusOK {
		t.Fatalf("observe after reload: %d %s", status, body)
	}
	getJSON(t, ts.URL+"/healthz", &health)
	if health.Dims[0] != 21 {
		t.Fatalf("post-reload fold-in: dims %v", health.Dims)
	}
}

// TestBodyLimit: oversized request bodies are cut off with a JSON 413.
func TestBodyLimit(t *testing.T) {
	_, ts := testServer(t, Options{MaxBodyBytes: 64})
	big := `{"indexes":[` + strings.Repeat(`[1,2,3],`, 100) + `[1,2,3]]}`
	status, body := postJSON(t, ts.URL+"/v1/predict-batch", big)
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d (%s), want 413", status, body)
	}
	var e errorResponse
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Fatalf("413 body is not a JSON error: %s", body)
	}
	// Small bodies still work.
	if status, body = postJSON(t, ts.URL+"/v1/predict", `{"index":[1,2,3]}`); status != http.StatusOK {
		t.Fatalf("small body rejected: %d %s", status, body)
	}
}

// TestTimeoutMiddleware: a handler that outlives the per-request budget is
// answered with a JSON 503 while fast handlers pass through untouched.
func TestTimeoutMiddleware(t *testing.T) {
	s, _ := testServer(t, Options{Timeout: 20 * time.Millisecond})

	slow := s.withTimeout(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-time.After(2 * time.Second):
		}
		w.WriteHeader(http.StatusOK)
	})
	rr := httptest.NewRecorder()
	slow.ServeHTTP(rr, httptest.NewRequest(http.MethodPost, "/v1/predict", nil))
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("slow handler: status %d, want 503", rr.Code)
	}
	var e errorResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &e); err != nil || e.Error == "" {
		t.Fatalf("503 body is not a JSON error: %s", rr.Body.String())
	}
	if s.met.timeouts.Load() == 0 {
		t.Fatal("timeout not counted")
	}

	fast := s.withTimeout(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Fast", "yes")
		w.WriteHeader(http.StatusTeapot)
		fmt.Fprint(w, "ok")
	})
	rr = httptest.NewRecorder()
	fast.ServeHTTP(rr, httptest.NewRequest(http.MethodPost, "/v1/predict", nil))
	if rr.Code != http.StatusTeapot || rr.Body.String() != "ok" || rr.Header().Get("X-Fast") != "yes" {
		t.Fatalf("fast handler response mangled: %d %q", rr.Code, rr.Body.String())
	}
}

// TestWatchModelReloads: overwriting the model file is a deploy — the
// watcher notices the stat change and hot-swaps without any signal or call.
func TestWatchModelReloads(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.ptkm")
	if err := core.SaveModel(path, fitModel(t, 7)); err != nil {
		t.Fatal(err)
	}
	s, ts := testServer(t, Options{ModelPath: path})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		_ = s.WatchModel(ctx, 10*time.Millisecond)
	}()

	var before predictResponse
	status, body := postJSON(t, ts.URL+"/v1/predict", `{"index":[1,2,3]}`)
	if status != http.StatusOK {
		t.Fatalf("predict: %d %s", status, body)
	}
	if err := json.Unmarshal(body, &before); err != nil {
		t.Fatal(err)
	}

	// Deploy a different model by overwriting the file.
	if err := core.SaveModel(path, fitModel(t, 8)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		status, body = postJSON(t, ts.URL+"/v1/predict", `{"index":[1,2,3]}`)
		if status != http.StatusOK {
			t.Fatalf("predict: %d %s", status, body)
		}
		var now predictResponse
		if err := json.Unmarshal(body, &now); err != nil {
			t.Fatal(err)
		}
		if now.Value != before.Value {
			break // the new model answers
		}
		if time.Now().After(deadline) {
			t.Fatal("watcher never reloaded the overwritten model")
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	<-watchDone
}
