// Multi-model tenancy: a Registry hosts many named models in one process,
// each behind the full single-model Server (its own journal, holdout,
// replication epoch, and metrics), routed by URL path prefix or header:
//
//	POST /m/<name>/v1/predict      path-prefix routing (stripped before the
//	                               tenant's own mux sees the request)
//	POST /v1/predict               header routing: X-Ptucker-Model: <name>
//	GET  /healthz                  registry health — every tenant's load
//	                               state, without cold-loading anything
//	GET  /metrics                  one merged exposition: every loaded
//	                               tenant's families under model="<name>",
//	                               process runtime families once
//
// Tenants are discovered once, at construction, from a models directory:
// a subdirectory holding a model.ptkm is a durable tenant (the directory
// becomes its DataDir, so observes journal and refits compact per tenant),
// and a bare <name>.ptkm file is a read-mostly tenant with no durability.
//
// Loading is lazy: a tenant's Server is built on first touch, and — when
// the per-tenant Options enable Mmap — the model bytes stay in a read-only
// file mapping. MaxMappedBytes bounds the total across tenants: crossing
// it evicts the least-recently-touched idle tenant, closing its Server and
// unmapping its model. Eviction takes the tenant's write lock, which waits
// for every in-flight request (they hold the read lock for the duration of
// the request), so a mapping is never torn down under a live prediction.
package serve

import (
	"bytes"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	expo "repro/internal/metrics"
	"repro/internal/store"
)

// ModelHeader is the request header naming the target model when routing
// without the /m/<name>/ path prefix.
const ModelHeader = "X-Ptucker-Model"

// tenantName validates discovered model names: they appear in URLs and
// metric label values, so they are restricted to a filesystem- and
// label-safe alphabet.
var tenantName = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]*$`)

// RegistryOptions configures a multi-model Registry.
type RegistryOptions struct {
	// ModelsDir is scanned once for tenants: subdirectories containing a
	// model.ptkm (durable, the subdirectory is the tenant's DataDir) and
	// bare <name>.ptkm files (non-durable). Required.
	ModelsDir string
	// MaxMappedBytes bounds the total MappedBytes across loaded tenants;
	// crossing it after a load evicts least-recently-touched tenants until
	// back under the bound (the tenant that just loaded is never evicted).
	// 0 means unbounded.
	MaxMappedBytes int64
	// Base is the Options template every tenant Server is built from.
	// ModelPath, Model, DataDir, HoldoutPath, and Follow are overwritten
	// per tenant; everything else (Workers, MaxBatch, Mmap, AuthToken,
	// timeouts, logging...) applies to all tenants uniformly.
	Base Options
}

// Registry is the multi-model router. All methods are safe for concurrent
// use. Its mutexes extend the package hierarchy documented on Server:
// Registry.mu (tenant table and LRU bookkeeping) is the outermost lock,
// tenant.mu sits between it and the per-Server locks.
type Registry struct {
	opts RegistryOptions
	log  *slog.Logger

	mu      sync.Mutex
	tenants map[string]*tenant

	evictions atomic.Int64

	now func() time.Time
}

// tenant is one named model slot. srv and handler are nil while the tenant
// is cold (never touched, or evicted); both are guarded by mu. Requests
// hold mu.RLock for their full duration, so an eviction's mu.Lock cannot
// unmap a model while any request still reads it.
type tenant struct {
	name      string
	dataDir   string // "" for a bare-file (non-durable) tenant
	modelPath string
	holdout   string

	mu      sync.RWMutex
	srv     *Server
	handler http.Handler

	// loaded mirrors srv != nil for lock-free health reporting; lastTouch
	// (UnixNano) is the LRU clock, stamped on every acquire.
	loaded    atomic.Bool
	lastTouch atomic.Int64
}

// NewRegistry scans opts.ModelsDir and returns a registry serving every
// tenant found there. No model is loaded yet — tenants load on first touch.
func NewRegistry(opts RegistryOptions) (*Registry, error) {
	if opts.ModelsDir == "" {
		return nil, fmt.Errorf("serve: RegistryOptions needs a ModelsDir")
	}
	entries, err := os.ReadDir(opts.ModelsDir)
	if err != nil {
		return nil, fmt.Errorf("serve: models dir: %w", err)
	}
	r := &Registry{
		opts:    opts,
		tenants: make(map[string]*tenant),
		now:     time.Now,
	}
	r.log = opts.Base.Logger
	if r.log == nil {
		r.log = slog.Default()
	}
	for _, ent := range entries {
		var t *tenant
		switch {
		case ent.IsDir():
			dir := filepath.Join(opts.ModelsDir, ent.Name())
			mp := filepath.Join(dir, store.ModelFile)
			if _, err := os.Stat(mp); err != nil {
				continue // not a tenant directory (no model yet)
			}
			t = &tenant{name: ent.Name(), dataDir: dir, modelPath: mp}
			for _, h := range []string{"holdout.tns", "holdout.ptkt"} {
				if _, err := os.Stat(filepath.Join(dir, h)); err == nil {
					t.holdout = filepath.Join(dir, h)
					break
				}
			}
		case strings.HasSuffix(ent.Name(), ".ptkm"):
			name := strings.TrimSuffix(ent.Name(), ".ptkm")
			t = &tenant{name: name, modelPath: filepath.Join(opts.ModelsDir, ent.Name())}
		default:
			continue
		}
		if !tenantName.MatchString(t.name) {
			return nil, fmt.Errorf("serve: model name %q is not URL- and label-safe", t.name)
		}
		if _, dup := r.tenants[t.name]; dup {
			return nil, fmt.Errorf("serve: model %q discovered twice (directory and bare file)", t.name)
		}
		r.tenants[t.name] = t
	}
	if len(r.tenants) == 0 {
		return nil, fmt.Errorf("serve: no models found under %s (want <name>/%s directories or <name>.ptkm files)",
			opts.ModelsDir, store.ModelFile)
	}
	r.log.Info("registry discovered models", "dir", opts.ModelsDir, "models", len(r.tenants))
	return r, nil
}

// Models returns the discovered tenant names, sorted.
func (r *Registry) Models() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.tenants))
	for name := range r.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// tenantOptions builds one tenant's Server Options from the base template.
func (r *Registry) tenantOptions(t *tenant) Options {
	o := r.opts.Base
	o.Model = nil
	o.ModelPath = t.modelPath
	o.DataDir = t.dataDir
	o.HoldoutPath = t.holdout
	o.Follow = "" // registry tenants are primaries
	o.Logger = r.log.With("model", t.name)
	return o
}

// acquire returns name's handler with the tenant read-locked; the caller
// must invoke release when the request is done. Cold tenants load here
// (first touch), which may in turn evict someone else's mapping.
func (r *Registry) acquire(name string) (http.Handler, func(), error) {
	r.mu.Lock()
	t := r.tenants[name]
	r.mu.Unlock()
	if t == nil {
		return nil, nil, fmt.Errorf("unknown model %q", name)
	}
	for {
		t.mu.RLock()
		if t.srv != nil {
			t.lastTouch.Store(r.now().UnixNano())
			h := t.handler
			return h, t.mu.RUnlock, nil
		}
		t.mu.RUnlock()
		if err := r.load(t); err != nil {
			return nil, nil, err
		}
		// Loop: the load published srv (ours or a concurrent caller's), but
		// an eviction may race in between — re-check under the read lock.
	}
}

// load builds t's Server if it is still cold, then rebalances the mapped-
// bytes budget. The eviction scan runs after t.mu is released (lock order:
// Registry.mu must not be taken while holding tenant.mu), and never picks
// the tenant that just loaded.
func (r *Registry) load(t *tenant) error {
	t.mu.Lock()
	if t.srv == nil {
		srv, err := New(r.tenantOptions(t))
		if err != nil {
			t.mu.Unlock()
			return fmt.Errorf("model %s: %w", t.name, err)
		}
		t.srv = srv
		t.handler = srv.Handler()
		t.loaded.Store(true)
		t.lastTouch.Store(r.now().UnixNano())
		r.log.Info("model loaded into registry",
			"model", t.name, "durable", t.dataDir != "", "mapped_bytes", srv.MappedBytes())
	}
	t.mu.Unlock()
	r.maybeEvict(t)
	return nil
}

// maybeEvict closes least-recently-touched tenants until the total mapped
// bytes fit MaxMappedBytes again. keep (the tenant that triggered the
// rebalance) is exempt: the model just asked for must be allowed to serve
// even if it alone exceeds the bound.
func (r *Registry) maybeEvict(keep *tenant) {
	max := r.opts.MaxMappedBytes
	if max <= 0 {
		return
	}
	for r.MappedBytes() > max {
		victim := r.coldest(keep)
		if victim == nil {
			return
		}
		// The write lock waits for every in-flight request on the victim
		// (each holds the read lock end-to-end), so Close never unmaps a
		// model a live request still reads.
		victim.mu.Lock()
		if victim.srv != nil {
			freed := victim.srv.MappedBytes()
			victim.srv.Close()
			victim.srv = nil
			victim.handler = nil
			victim.loaded.Store(false)
			r.evictions.Add(1)
			r.log.Info("model evicted from registry", "model", victim.name, "freed_bytes", freed)
		}
		victim.mu.Unlock()
	}
}

// coldest picks the loaded tenant with the oldest lastTouch, excluding
// keep; nil when no eviction candidate remains.
func (r *Registry) coldest(keep *tenant) *tenant {
	r.mu.Lock()
	defer r.mu.Unlock()
	var victim *tenant
	for _, t := range r.tenants {
		if t == keep || !t.loaded.Load() {
			continue
		}
		if victim == nil || t.lastTouch.Load() < victim.lastTouch.Load() {
			victim = t
		}
	}
	return victim
}

// MappedBytes reports the total model bytes currently served from memory
// mappings across every loaded tenant.
func (r *Registry) MappedBytes() int64 {
	var total int64
	for _, t := range r.snapshotTenants() {
		t.mu.RLock()
		if t.srv != nil {
			total += t.srv.MappedBytes()
		}
		t.mu.RUnlock()
	}
	return total
}

// snapshotTenants returns the tenant set, name-sorted, without holding
// Registry.mu beyond the copy (per-tenant locks come after r.mu in the
// hierarchy but are taken one at a time by the callers).
func (r *Registry) snapshotTenants() []*tenant {
	r.mu.Lock()
	defer r.mu.Unlock()
	ts := make([]*tenant, 0, len(r.tenants))
	for _, t := range r.tenants {
		ts = append(ts, t)
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i].name < ts[j].name })
	return ts
}

// Close shuts every loaded tenant down. The caller shuts the http.Server
// down first, same as with a single-model Server.
func (r *Registry) Close() {
	for _, t := range r.snapshotTenants() {
		t.mu.Lock()
		if t.srv != nil {
			t.srv.Close()
			t.srv = nil
			t.handler = nil
			t.loaded.Store(false)
		}
		t.mu.Unlock()
	}
}

// Handler returns the registry's route table: tenant traffic under /m/ or
// via the model header, plus the registry-scoped health and metrics.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/m/", r.handlePrefixed)
	mux.HandleFunc("/healthz", r.handleHealthz)
	mux.HandleFunc("/metrics", r.handleMetrics)
	mux.HandleFunc("/", r.handleHeaderRouted)
	return mux
}

// handlePrefixed serves /m/<name>/<rest>: the prefix is stripped so the
// tenant's own mux sees the request at <rest>, exactly as a single-model
// deployment would. A replication follower can therefore follow one tenant
// by pointing -follow at http://host:port/m/<name> unchanged.
func (r *Registry) handlePrefixed(w http.ResponseWriter, req *http.Request) {
	name, rest, _ := strings.Cut(strings.TrimPrefix(req.URL.Path, "/m/"), "/")
	r.serveTenant(w, req, name, "/"+rest)
}

// handleHeaderRouted serves any other path carrying the model header; a
// request naming no model cannot be routed and is answered 404 with the
// routing contract spelled out.
func (r *Registry) handleHeaderRouted(w http.ResponseWriter, req *http.Request) {
	name := req.Header.Get(ModelHeader)
	if name == "" {
		writeJSON(w, http.StatusNotFound, errorResponse{
			Error: fmt.Sprintf("multi-model server: route with /m/<name>%s or the %s header", req.URL.Path, ModelHeader),
		})
		return
	}
	r.serveTenant(w, req, name, req.URL.Path)
}

func (r *Registry) serveTenant(w http.ResponseWriter, req *http.Request, name, path string) {
	if !tenantName.MatchString(name) {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "malformed model name"})
		return
	}
	h, release, err := r.acquire(name)
	if err != nil {
		status := http.StatusNotFound
		if !strings.HasPrefix(err.Error(), "unknown model") {
			// Discovered but unloadable (corrupt file, bad journal): the
			// request was well-addressed, the backend is what failed.
			status = http.StatusInternalServerError
		}
		writeJSON(w, status, errorResponse{Error: err.Error()})
		return
	}
	defer release()
	// Shallow request clone with the tenant-relative path; the original
	// URL must stay untouched (the mux may reuse it).
	r2 := new(http.Request)
	*r2 = *req
	u := *req.URL
	u.Path = path
	r2.URL = &u
	h.ServeHTTP(w, r2)
}

// registryStatus is the /healthz shape: per-tenant load state, no loads
// triggered by the probe itself.
type registryStatus struct {
	Status      string               `json:"status"`
	Models      []registryModelState `json:"models"`
	MappedBytes int64                `json:"mapped_bytes"`
}

type registryModelState struct {
	Name    string `json:"name"`
	Durable bool   `json:"durable"`
	Loaded  bool   `json:"loaded"`
}

func (r *Registry) handleHealthz(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "method not allowed"})
		return
	}
	st := registryStatus{Status: "ok", MappedBytes: r.MappedBytes()}
	for _, t := range r.snapshotTenants() {
		st.Models = append(st.Models, registryModelState{
			Name:    t.name,
			Durable: t.dataDir != "",
			Loaded:  t.loaded.Load(),
		})
	}
	writeJSON(w, http.StatusOK, st)
}

// handleMetrics renders one merged exposition: registry-scoped families,
// every loaded tenant's full family set under its constant model label,
// and the process runtime families exactly once. Cold tenants are not
// loaded by a scrape.
func (r *Registry) handleMetrics(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	merger := expo.NewMerger()
	var loaded int
	var mapped int64
	var frags [][]byte
	for _, t := range r.snapshotTenants() {
		t.mu.RLock()
		if t.srv != nil {
			var buf bytes.Buffer
			t.srv.renderMetrics(expo.NewExpo(&buf).WithConstLabel("model", t.name))
			frags = append(frags, buf.Bytes())
			loaded++
			mapped += t.srv.MappedBytes()
		}
		t.mu.RUnlock()
	}

	var reg bytes.Buffer
	e := expo.NewExpo(&reg)
	r.mu.Lock()
	total := len(r.tenants)
	r.mu.Unlock()
	e.GaugeInt("ptucker_registry_models", "Models discovered in the models directory.", int64(total))
	e.GaugeInt("ptucker_registry_models_loaded", "Models currently loaded (serving or idle-warm).", int64(loaded))
	e.Counter("ptucker_registry_evictions_total", "Tenant models evicted to stay under the mapped-bytes budget.", r.evictions.Load())
	e.GaugeInt("ptucker_registry_mapped_bytes", "Total model bytes served from memory mappings across loaded tenants.", mapped)

	var rt bytes.Buffer
	renderRuntime(expo.NewExpo(&rt))

	if err := merger.Add(reg.Bytes()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	for _, frag := range frags {
		if err := merger.Add(frag); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	if err := merger.Add(rt.Bytes()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_, _ = merger.WriteTo(w)
}

// renderMetrics writes this server's families into e — the registry's
// per-tenant scrape path. The runtime families are the caller's concern
// (emitted once per process, not once per tenant).
func (s *Server) renderMetrics(e *expo.Expo) {
	var depths func() []int
	if s.coal != nil {
		depths = s.coal.queueDepths
	}
	s.met.render(e, s.snapshot, depths, s.replSample, s.MappedBytes)
}
