package serve

import (
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/url"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/replicate"
	"repro/internal/store"
)

// Replication wiring (see package replicate for the protocol).
//
// Primary side: /v1/journal/bootstrap ships the served model and the journal
// sequence it covers; /v1/journal long-polls record frames. Both are bounded
// by the applied sequence — the highest journal record actually reflected in
// the fitter — never by the journal's own tail: records staged during a
// background refit are journaled but not yet applied, and streaming them
// early would let a follower run ahead of the primary's own model. The
// stream identity is (epoch, gen): epoch is persisted and bumped at every
// primary startup (a restart under a relaxed fsync policy may have lost
// journal-tail records, so followers must never trust a restarted primary's
// continuity), and gen counts in-memory model replacements that bypass the
// journal — reloads and background-refit publishes. Followers seeing either
// change re-bootstrap.
//
// Follower side: the replicate.Follower run loop drives a server-owned
// Applier. The follower's fitter is mutated only by that loop; predictions
// read atomically swapped snapshots exactly as on a primary. With a DataDir
// the follower keeps a local copy of the stream — replica model container
// (model + covered seq in one atomic file) plus a journal created at the
// primary's covered sequence, so local appends reproduce the primary's
// sequence numbers — and resumes from it across restarts without
// re-downloading the model.

// replState carries the replication identity and progress shared between
// request handlers and the observe/refit paths.
type replState struct {
	// epoch is the persisted primary process epoch (0 = replication
	// unavailable: no data dir, or follower mode). Written once during
	// startup, read-only afterwards.
	epoch uint64
	// gen counts model replacements that bypass the journal (reloads,
	// refit publishes). Starts at 1 so the zero Identity is never valid.
	gen atomic.Uint64
	// appliedSeq is the highest journal sequence reflected in the fitter
	// (and therefore in the served snapshot).
	appliedSeq atomic.Uint64
	// notify is a close-and-replace broadcast: long-polling stream
	// handlers wait on the current channel, and every applied-sequence or
	// generation advance swaps in a fresh one and closes the old. No
	// mutex, so it stays outside the server's lock hierarchy.
	notify atomic.Pointer[chan struct{}]

	// fol is the follower-side state (nil on a primary).
	fol *followerState
}

func (r *replState) initNotify() {
	ch := make(chan struct{})
	r.notify.Store(&ch)
}

// wake re-arms the broadcast channel and wakes every waiting stream handler.
func (r *replState) wake() {
	ch := make(chan struct{})
	old := r.notify.Swap(&ch)
	if old != nil {
		close(*old)
	}
}

// bumpGen invalidates the current stream identity (the model changed without
// journal records) and wakes waiters so they answer 410 promptly.
func (r *replState) bumpGen() {
	r.gen.Add(1)
	r.wake()
}

// advance publishes a newly applied journal sequence and wakes waiters.
func (r *replState) advance(seq uint64) {
	r.appliedSeq.Store(seq)
	r.wake()
}

// followerState is the tailing loop's handles. Fields are either owned
// exclusively by the run goroutine (fitter via online.fitter, journal
// writes) or atomic.
type followerState struct {
	client  *replicate.Client
	journal *store.Journal // local stream copy (nil without a DataDir)
	// lastAdvance is the UnixNano time the follower last applied a record
	// or confirmed being caught up; replica lag is measured from it.
	lastAdvance atomic.Int64
	// primaryLast mirrors the primary's applied sequence from the latest
	// completed poll.
	primaryLast atomic.Uint64
	// failed is set when the run loop exits on a fatal error; /healthz
	// reports it so the replica is ejected rather than serving a model
	// that silently stopped converging.
	failed atomic.Bool
	// done closes when the run loop has exited (Close waits for it before
	// closing the local journal).
	done chan struct{}
}

func (s *Server) isFollower() bool { return s.opts.Follow != "" }

// AppliedSeq reports the highest journal sequence reflected in the served
// model: on a durable primary, how far the journal has been applied; on a
// follower, how far it has replayed its primary's stream. Zero when the
// server is neither (no replication in play).
func (s *Server) AppliedSeq() uint64 { return s.repl.appliedSeq.Load() }

// replicaLag is how long ago the follower last confirmed progress. A
// caught-up follower hears from its primary once per poll window, so healthy
// lag oscillates between 0 and PollWait; MaxLag must sit above that.
func (s *Server) replicaLag() time.Duration {
	f := s.repl.fol
	if f == nil {
		return 0
	}
	return s.now().Sub(time.Unix(0, f.lastAdvance.Load()))
}

// replSample feeds the /metrics handler the replication gauges.
type replSample struct {
	role          string // "", "primary", "follower"
	appliedSeq    uint64
	lagSeconds    float64
	streamClients int64
}

func (s *Server) replSample() replSample {
	switch {
	case s.isFollower():
		return replSample{
			role:       "follower",
			appliedSeq: s.repl.appliedSeq.Load(),
			lagSeconds: s.replicaLag().Seconds(),
		}
	case s.repl.epoch != 0:
		return replSample{
			role:          "primary",
			appliedSeq:    s.repl.appliedSeq.Load(),
			streamClients: s.met.streamClients.Load(),
		}
	default:
		return replSample{}
	}
}

// --- primary: stream handlers ---

const (
	// maxStreamWait caps the long-poll window a client may ask for.
	maxStreamWait = 30 * time.Second
	// maxStreamChunk bounds one response's frame bytes (the chunk always
	// includes at least one whole record, however large).
	maxStreamChunk = 1 << 20
)

// identity returns the primary's current stream identity.
func (s *Server) identity() replicate.Identity {
	return replicate.Identity{Epoch: s.repl.epoch, Gen: s.repl.gen.Load()}
}

// replHeaders stamps the identity and journal bounds on a stream response.
func (s *Server) replHeaders(w http.ResponseWriter, id replicate.Identity, base, last uint64) {
	h := w.Header()
	h.Set(replicate.HeaderEpoch, strconv.FormatUint(id.Epoch, 10))
	h.Set(replicate.HeaderGen, strconv.FormatUint(id.Gen, 10))
	h.Set(replicate.HeaderBaseSeq, strconv.FormatUint(base, 10))
	h.Set(replicate.HeaderLastSeq, strconv.FormatUint(last, 10))
}

// replAvailable answers false (and the request) when this server cannot
// serve the replication endpoints.
func (s *Server) replAvailable(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodGet {
		s.methodNotAllowed(w, http.MethodGet)
		return false
	}
	if s.journal == nil || s.repl.epoch == 0 {
		writeJSON(w, http.StatusServiceUnavailable,
			errorResponse{Error: "replication requires a durable primary (-data-dir)"})
		return false
	}
	return true
}

// handleJournalBootstrap is GET /v1/journal/bootstrap: the served model plus
// the journal sequence it covers, under the current identity.
func (s *Server) handleJournalBootstrap(w http.ResponseWriter, r *http.Request) {
	if !s.replAvailable(w, r) {
		return
	}
	// Capture under online.mu: the observe path journals, applies, installs,
	// and advances the applied sequence under the same lock, so the snapshot
	// and the sequence here are two views of one state — even mid-refit,
	// when staged records are journaled but deliberately not yet covered.
	o := &s.online
	o.mu.Lock()
	snap := s.snapshot()
	covered := s.repl.appliedSeq.Load()
	id := s.identity()
	o.mu.Unlock()

	h := w.Header()
	h.Set("Content-Type", replicate.ModelContentType)
	h.Set(replicate.HeaderEpoch, strconv.FormatUint(id.Epoch, 10))
	h.Set(replicate.HeaderGen, strconv.FormatUint(id.Gen, 10))
	h.Set(replicate.HeaderCoveredSeq, strconv.FormatUint(covered, 10))
	w.WriteHeader(http.StatusOK)
	// The snapshot model is immutable (the fitter works on its own state),
	// so serialization safely runs off the lock.
	if _, err := snap.model.WriteTo(w); err != nil {
		// Headers are gone; all we can do is cut the connection short so
		// the client sees a truncated body, not a valid-looking model.
		s.event(slog.LevelWarn, "bootstrap stream interrupted", "error", err,
			"request_id", r.Header.Get(obs.RequestIDHeader))
	}
	s.met.bootstrapsServed.Add(1)
}

// handleJournalStream is GET /v1/journal: long-polled record frames after a
// client-supplied sequence, bounded by the applied sequence.
func (s *Server) handleJournalStream(w http.ResponseWriter, r *http.Request) {
	if !s.replAvailable(w, r) {
		return
	}
	q := r.URL.Query()
	after, err := queryUint(q, "after")
	if err != nil {
		s.badRequest(w, "journal", err)
		return
	}
	epoch, err := queryUint(q, "epoch")
	if err != nil {
		s.badRequest(w, "journal", err)
		return
	}
	gen, err := queryUint(q, "gen")
	if err != nil {
		s.badRequest(w, "journal", err)
		return
	}
	wait := replicate.DefaultPollWait
	if v := q.Get("wait"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			s.badRequest(w, "journal", fmt.Errorf("bad wait %q", v))
			return
		}
		wait = min(d, maxStreamWait)
	}
	want := replicate.Identity{Epoch: epoch, Gen: gen}

	s.met.streamClients.Add(1)
	defer s.met.streamClients.Add(-1)

	deadline := time.NewTimer(wait)
	defer deadline.Stop()
	for {
		// Load the broadcast channel before checking state: an advance
		// landing between the check and the wait closes this channel, so
		// the wait wakes instead of sleeping through it.
		ch := *s.repl.notify.Load()

		id := s.identity()
		applied := s.repl.appliedSeq.Load()
		base := s.journal.BaseSeq()
		if id != want {
			s.replHeaders(w, id, base, applied)
			writeJSON(w, http.StatusGone, errorResponse{
				Error: fmt.Sprintf("stream identity is %s, not %s; re-bootstrap", id, want)})
			return
		}
		if after < base || after > applied {
			s.replHeaders(w, id, base, applied)
			writeJSON(w, http.StatusGone, errorResponse{
				Error: fmt.Sprintf("seq %d is outside the streamable window (%d, %d]; re-bootstrap", after, base, applied)})
			return
		}
		if after < applied {
			frames, n, _, err := s.journal.StreamChunk(after, applied, maxStreamChunk)
			if err != nil {
				if errors.Is(err, store.ErrBadJournal) {
					// A compaction rotated the records away between the
					// bounds check and the read.
					s.replHeaders(w, id, s.journal.BaseSeq(), applied)
					writeJSON(w, http.StatusGone, errorResponse{Error: err.Error()})
					return
				}
				s.met.errors("journal").Add(1)
				writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
				return
			}
			if n > 0 {
				s.replHeaders(w, id, base, applied)
				w.Header().Set("Content-Type", replicate.StreamContentType)
				w.WriteHeader(http.StatusOK)
				if _, err := w.Write(frames); err == nil {
					s.met.streamRecords.Add(int64(n))
					s.met.streamBytes.Add(int64(len(frames)))
				}
				return
			}
		}
		// Caught up: hold the poll open until something advances, the wait
		// window closes, or either side goes away.
		select {
		case <-ch:
		case <-deadline.C:
			s.replHeaders(w, id, base, applied)
			w.Header().Set("Content-Type", replicate.StreamContentType)
			w.WriteHeader(http.StatusOK)
			return
		case <-r.Context().Done():
			return
		case <-s.life.Done():
			s.replHeaders(w, id, base, applied)
			w.Header().Set("Content-Type", replicate.StreamContentType)
			w.WriteHeader(http.StatusOK)
			return
		}
	}
}

func queryUint(q url.Values, name string) (uint64, error) {
	v := q.Get(name)
	if v == "" {
		return 0, fmt.Errorf("missing query parameter %q", name)
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad query parameter %s=%q", name, v)
	}
	return n, nil
}

// rejectOnFollower answers a write (or journal) request on a replica: 403
// with a Location hint naming the only process that can take it.
func (s *Server) rejectOnFollower() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.met.writesRejected.Add(1)
		w.Header().Set("Location", s.opts.Follow+r.URL.Path)
		writeJSON(w, http.StatusForbidden, errorResponse{
			Error: fmt.Sprintf("this is a read replica; send %s to the primary at %s", r.URL.Path, s.opts.Follow)})
	})
}

// --- follower: startup, resume, and the Applier ---

// bootstrapAttempts bounds the synchronous startup bootstrap: a follower
// that cannot reach its primary at all fails fast (supervisors restart it)
// instead of serving nothing indefinitely.
const bootstrapAttempts = 5

// initFollower brings up follower mode: resume from the local data
// directory when it holds a consistent replica state, bootstrap from the
// primary otherwise, then start the tailing loop.
func (s *Server) initFollower() error {
	if s.opts.ModelPath != "" || s.opts.Model != nil {
		return errors.New("serve: a follower bootstraps its model from the primary; Follow excludes ModelPath/Model")
	}
	if s.opts.RefitAfter != 0 {
		return errors.New("serve: followers do not refit (the primary's refits re-bootstrap them); Follow excludes RefitAfter")
	}
	if s.opts.CompactAge != 0 {
		return errors.New("serve: CompactAge is a primary-side option; a follower's local journal compacts by CompactBytes")
	}
	if _, err := url.Parse(s.opts.Follow); err != nil {
		return fmt.Errorf("serve: bad Follow URL: %w", err)
	}
	fol := &followerState{
		client: &replicate.Client{
			Primary:  s.opts.Follow,
			Token:    s.opts.AuthToken,
			PollWait: s.opts.PollWait,
			// Every bootstrap/poll carries a fresh correlation ID, so a
			// follower-side fetch joins up with the primary's access log.
			RequestID: obs.NewRequestID,
		},
		done: make(chan struct{}),
	}
	s.repl.fol = fol

	if s.opts.DataDir != "" {
		dir, err := store.OpenDir(s.opts.DataDir)
		if err != nil {
			return err
		}
		if dir.HasModel() && !dir.HasFollowerState() {
			return fmt.Errorf("serve: data dir %s belongs to a primary; refusing to tail over it", s.opts.DataDir)
		}
		s.dir = dir
	}

	id, resumed := s.resumeReplica()
	if !resumed {
		bs, err := s.bootstrapBlocking()
		if err != nil {
			return err
		}
		if err := s.replicaRebase(bs); err != nil {
			return err
		}
		id = bs.Identity
	}

	run := &replicate.Follower{
		Client:   fol.client,
		Applier:  (*replicaApplier)(s),
		Identity: id,
		Order:    s.snapshot().order,
		Logf: func(format string, args ...interface{}) {
			s.event(slog.LevelInfo, fmt.Sprintf(format, args...), "component", "replicate")
		},
	}
	go func() {
		defer close(fol.done)
		if err := run.Run(s.life); err != nil {
			fol.failed.Store(true)
			s.event(slog.LevelError, "replication stopped", "error", err,
				"frozen_at_seq", s.repl.appliedSeq.Load(), "detail", "restart to resume")
		}
	}()
	return nil
}

// resumeReplica tries to restore follower state from the local data
// directory: the replica model container plus the local journal replayed
// through plan/apply. Any inconsistency falls back to a fresh bootstrap —
// losing nothing but the download.
func (s *Server) resumeReplica() (replicate.Identity, bool) {
	if s.dir == nil || !s.dir.HasFollowerState() {
		return replicate.Identity{}, false
	}
	fail := func(err error) (replicate.Identity, bool) {
		s.event(slog.LevelWarn, "local replica state unusable", "error", err, "detail", "re-bootstrapping")
		return replicate.Identity{}, false
	}
	st, ok, err := s.dir.LoadFollowerState()
	if err != nil || !ok {
		return fail(err)
	}
	m, covered, err := s.dir.LoadReplicaModel()
	if err != nil {
		return fail(err)
	}
	j, err := store.OpenJournal(s.dir.JournalPath(), m.Order(), s.opts.JournalSync)
	if err != nil {
		return fail(err)
	}
	if j.Recovered > 0 {
		s.event(slog.LevelWarn, "replica journal recovery dropped torn tail",
			"bytes", j.Recovered, "detail", "the intact records replay")
	}
	j.ObserveSync(s.met.journalFsyncDur.ObserveDuration)
	// The model must sit inside the journal's window: at or past the base
	// (records below the model's coverage may have been compacted away) and
	// at or before the tail (a model ahead of the journal cannot happen in
	// any crash ordering — it means mixed-up files).
	if covered < j.BaseSeq() || covered > j.LastSeq() {
		j.Close()
		return fail(fmt.Errorf("replica model covers seq %d, journal holds (%d, %d]", covered, j.BaseSeq(), j.LastSeq()))
	}
	f, err := s.resumeFitter(m)
	if err != nil {
		j.Close()
		return fail(err)
	}
	replayed := 0
	err = j.Replay(func(rec store.Record) error {
		if rec.Seq <= covered {
			return nil
		}
		plan, err := planObservations(f.Dims(), rec.Observations)
		if err != nil {
			return fmt.Errorf("record %d: %w", rec.Seq, err)
		}
		if _, err := s.applyPlan(f, plan, false); err != nil {
			return fmt.Errorf("record %d: %w", rec.Seq, err)
		}
		replayed++
		return nil
	})
	if err != nil {
		j.Close()
		return fail(err)
	}
	s.repl.fol.journal = j
	s.online.fitter = f
	s.cur.Store(newSnapshot(f.Snapshot(), s.opts.Follow, s.opts.Workers, s.now()))
	s.repl.appliedSeq.Store(j.LastSeq())
	s.repl.fol.lastAdvance.Store(s.now().UnixNano())
	s.event(slog.LevelInfo, "resumed replica from local state",
		"seq", j.LastSeq(), "replayed", replayed, "primary", s.opts.Follow)
	return replicate.Identity{Epoch: st.Epoch, Gen: st.Gen}, true
}

// bootstrapBlocking fetches the initial bootstrap synchronously, with
// bounded jittered retries, so New returns a server that can actually
// answer predictions.
func (s *Server) bootstrapBlocking() (*replicate.Bootstrap, error) {
	var lastErr error
	for attempt := 1; attempt <= bootstrapAttempts; attempt++ {
		bs, err := s.repl.fol.client.Bootstrap(s.life)
		if err == nil {
			return bs, nil
		}
		lastErr = err
		if attempt < bootstrapAttempts {
			s.event(slog.LevelWarn, "bootstrap failed",
				"primary", s.opts.Follow, "error", err, "attempt", attempt, "retries", bootstrapAttempts-1)
			select {
			case <-s.life.Done():
				return nil, ErrServerClosed
			case <-time.After(replicate.Backoff(s.opts.Follow, attempt)):
			}
		}
	}
	return nil, fmt.Errorf("serve: bootstrap from %s: %w", s.opts.Follow, lastErr)
}

// replicaRebase installs a bootstrap as the follower's whole state: fitter,
// snapshot, and (when durable) the local replica files. The on-disk commit
// order makes every crash recoverable: the state file is cleared first, so
// no crash can leave it endorsing mismatched artifacts, and written last
// once model + journal agree.
func (s *Server) replicaRebase(bs *replicate.Bootstrap) error {
	f, err := s.resumeFitter(bs.Model)
	if err != nil {
		return fmt.Errorf("serve: resume bootstrapped model: %w", err)
	}
	fol := s.repl.fol
	if s.dir != nil {
		if err := s.dir.ClearFollowerState(); err != nil {
			return fmt.Errorf("serve: clear replica state: %w", err)
		}
		if err := s.dir.SaveReplicaModel(bs.Model, bs.Covered); err != nil {
			return err
		}
		if fol.journal != nil {
			_ = fol.journal.Close()
		}
		j, err := store.CreateJournal(s.dir.JournalPath(), bs.Model.Order(), bs.Covered, s.opts.JournalSync)
		if err != nil {
			return err
		}
		j.ObserveSync(s.met.journalFsyncDur.ObserveDuration)
		fol.journal = j
		if err := s.dir.SaveFollowerState(store.FollowerState{Epoch: bs.Identity.Epoch, Gen: bs.Identity.Gen}); err != nil {
			return err
		}
	}
	o := &s.online
	o.mu.Lock()
	o.fitter = f
	s.cur.Store(newSnapshot(bs.Model, s.opts.Follow, s.opts.Workers, s.now()))
	s.repl.appliedSeq.Store(bs.Covered)
	o.mu.Unlock()
	fol.lastAdvance.Store(s.now().UnixNano())
	s.met.replicaBootstraps.Add(1)
	s.event(slog.LevelInfo, "replica bootstrapped",
		"primary_epoch", bs.Identity.Epoch, "primary_gen", bs.Identity.Gen, "covered", bs.Covered)
	s.updateHoldout(bs.Model)
	return nil
}

// replicaApplier implements replicate.Applier over the server. Only the
// follower run goroutine calls it, strictly sequentially.
type replicaApplier Server

func (a *replicaApplier) srv() *Server { return (*Server)(a) }

func (a *replicaApplier) Rebase(bs *replicate.Bootstrap) error {
	return a.srv().replicaRebase(bs)
}

func (a *replicaApplier) Apply(rec store.Record) error {
	s := a.srv()
	fol := s.repl.fol
	t0 := time.Now()
	// Copy-journal-before-apply, the primary's own discipline: a crash
	// after the append replays the record on restart; a crash before it
	// re-fetches it from the primary.
	if fol.journal != nil {
		seq, err := fol.journal.Append(rec.Observations)
		if err != nil {
			return fmt.Errorf("local journal: %w", err)
		}
		if seq != rec.Seq {
			return fmt.Errorf("local journal assigned seq %d to primary record %d", seq, rec.Seq)
		}
	}
	o := &s.online
	o.mu.Lock()
	f := o.fitter
	plan, err := planObservations(f.Dims(), rec.Observations)
	if err == nil {
		var resp *observeResponse
		resp, err = s.applyPlan(f, plan, true)
		if err == nil && len(resp.Folded) > 0 {
			s.install(f.Snapshot())
		}
	}
	if err == nil {
		s.repl.appliedSeq.Store(rec.Seq)
		s.met.observations.Add(int64(len(rec.Observations)))
	}
	o.mu.Unlock()
	if err != nil {
		return err
	}
	fol.lastAdvance.Store(s.now().UnixNano())
	s.met.replicaRecords.Add(1)
	s.met.replicaApplyDur.ObserveSince(t0)

	// Local compaction: fold the replica journal into the model container
	// once it outgrows CompactBytes. Synchronous and single-threaded (this
	// goroutine is the only journal writer); the container commits the
	// model and its covered sequence atomically, so any crash ordering
	// resumes cleanly.
	if s.opts.CompactBytes > 0 && fol.journal != nil &&
		fol.journal.Size() >= s.opts.CompactBytes {
		covered := rec.Seq
		if err := s.dir.SaveReplicaModel(f.Snapshot(), covered); err != nil {
			s.event(slog.LevelError, "replica compaction failed", "stage", "save model",
				"error", err, "detail", "journal kept; will replay on restart")
			s.met.compactionErrors.Add(1)
		} else if err := fol.journal.ResetThrough(covered); err != nil {
			s.event(slog.LevelError, "replica compaction failed", "stage", "rotate journal",
				"error", err, "detail", "journal kept; will replay on restart")
			s.met.compactionErrors.Add(1)
		} else {
			s.met.compactions.Add(1)
			s.event(slog.LevelInfo, "replica journal compacted", "covered", covered)
		}
	}
	return nil
}

func (a *replicaApplier) AppliedSeq() uint64 {
	return a.srv().repl.appliedSeq.Load()
}

func (a *replicaApplier) CaughtUp(primaryLast uint64) {
	s := a.srv()
	fol := s.repl.fol
	fol.primaryLast.Store(primaryLast)
	if s.repl.appliedSeq.Load() >= primaryLast {
		fol.lastAdvance.Store(s.now().UnixNano())
	}
}

// ensure interface satisfaction at compile time.
var _ replicate.Applier = (*replicaApplier)(nil)
