package serve

import (
	"crypto/subtle"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/store"
	"repro/internal/tensor"
)

// Durability wiring. With Options.DataDir set, the server keeps three
// artifacts in the directory (see package store):
//
//   - observations.ptkj — every accepted /v1/observe batch, journaled before
//     it is applied;
//   - training.ptkt — the accumulated training set, snapshotted at each
//     compaction with the journal sequence it covers;
//   - model.ptkm — the persisted base model, written at each compaction and
//     at reload re-bases. When present it supersedes Options.ModelPath at
//     startup: the data directory holds the newest durable state.
//
// Startup replays the journal's uncovered records through the same
// plan/apply path live traffic takes. Observation application draws no
// randomness, so a process killed mid-stream and restarted serves
// bit-identical predictions to one that never crashed. After a successful
// background refit the journal is compacted: model and training set are
// persisted, and the journal is rotated empty (sequence numbers continue, so
// a crash between the two commits cannot double-apply).

// initDurable opens the data directory's journal, restores the online
// fitter from the training sidecar, and replays uncovered journal records.
// Called once from New, after the initial snapshot is installed; s.dir is
// already set (the initial model may have come from it).
func (s *Server) initDurable() error {
	if s.dir == nil {
		return nil
	}
	if s.dir.HasFollowerState() {
		return fmt.Errorf("serve: data dir %s belongs to a replication follower; a primary cannot start over it", s.dir.Path())
	}
	m := s.snapshot().model
	j, err := store.OpenJournal(s.dir.JournalPath(), m.Order(), s.opts.JournalSync)
	if err != nil {
		return err
	}
	// Replication identity: a fresh epoch every start (a restart may have
	// lost journal-tail records under a relaxed fsync policy, so followers
	// must re-bootstrap rather than trust continuity), generation 1 for
	// this process's first model.
	epoch, err := s.dir.NextEpoch()
	if err != nil {
		j.Close()
		return err
	}
	s.repl.epoch = epoch
	s.repl.gen.Store(1)
	if j.Recovered > 0 {
		s.event(slog.LevelWarn, "journal recovery dropped torn tail",
			"bytes", j.Recovered, "detail", "crash mid-write; every intact record replays")
	}
	// Fsync latency flows into the histogram from every append path —
	// SyncAlways appends, the SyncInterval flusher, and explicit Syncs alike.
	j.ObserveSync(s.met.journalFsyncDur.ObserveDuration)

	f, err := s.resumeFitter(m)
	if err != nil {
		j.Close()
		return fmt.Errorf("serve: resume fitter for replay: %w", err)
	}
	x, covered, err := s.dir.TrainingSnapshot()
	if err != nil {
		j.Close()
		return err
	}
	if x != nil {
		if err := f.AttachTrainingSet(x); err != nil {
			j.Close()
			return fmt.Errorf("serve: attach training snapshot: %w", err)
		}
	}

	folds := 0
	records, obs := 0, 0
	err = j.Replay(func(rec store.Record) error {
		if rec.Seq <= covered {
			return nil // already part of the training snapshot
		}
		plan, err := planObservations(f.Dims(), rec.Observations)
		if err != nil {
			return fmt.Errorf("serve: journal record %d: %w", rec.Seq, err)
		}
		resp, err := s.applyPlan(f, plan, false)
		if err != nil {
			return fmt.Errorf("serve: journal record %d: %w", rec.Seq, err)
		}
		folds += len(resp.Folded)
		records++
		obs += len(rec.Observations)
		return nil
	})
	if err != nil {
		j.Close()
		return err
	}

	s.journal = j
	s.online.fitter = f
	// Replayed observations were never refitted; they count toward the next
	// RefitAfter trigger like the live traffic they were.
	s.online.pending = obs
	s.durLastCovered = covered
	// Every surviving record is now reflected in the fitter (covered ones
	// via the training snapshot's model, the rest via the replay above).
	s.repl.appliedSeq.Store(j.LastSeq())
	if folds > 0 {
		s.install(f.Snapshot())
	}
	s.met.journalReplayed.Store(int64(records))
	if records > 0 {
		s.event(slog.LevelInfo, "journal replayed",
			"records", records, "observations", obs, "folds", folds, "covered", covered)
	}
	// Surviving records restart their age clock here: the journal does not
	// persist append times, so "older than CompactAge" is measured from this
	// boot for anything that was already on disk.
	if j.Len() > 0 {
		s.oldestUncovered.Store(s.now().UnixNano())
	}
	// A replay that alone reached the refit threshold means the crash (or
	// shutdown) interrupted a refit the live traffic had already earned;
	// retrigger it now instead of waiting for one more observe to tip it
	// over. The refit's own compaction supersedes a size-triggered one, and
	// startup stops being single-threaded here, so this path returns without
	// the unlocked compaction check below.
	if s.opts.RefitAfter > 0 && obs >= s.opts.RefitAfter {
		s.event(slog.LevelInfo, "resuming interrupted refit after replay",
			"observations", obs, "threshold", s.opts.RefitAfter)
		s.online.mu.Lock()
		s.triggerRefit(f)
		s.online.mu.Unlock()
		return nil
	}
	// A process restarted with an already-oversized journal (say it crashed
	// repeatedly before ever compacting) compacts right away instead of
	// waiting for the next observe. New is still single-threaded here.
	s.maybeCompactBySize(f)
	return nil
}

// journalAppend records one accepted batch and returns its assigned
// sequence; a nil journal (no data dir) is a no-op returning 0. The caller
// holds whichever lock currently admits observes, so appends are totally
// ordered exactly as they are applied.
func (s *Server) journalAppend(obs []core.Observation) (uint64, error) {
	if s.journal == nil {
		return 0, nil
	}
	t0 := time.Now()
	seq, err := s.journal.Append(obs)
	if err != nil {
		return 0, fmt.Errorf("%w: journal: %v", errObserveInternal, err)
	}
	s.met.journalAppends.Add(1)
	s.met.journalAppendDur.ObserveSince(t0)
	// First uncovered record since the last compaction: start its age clock.
	s.oldestUncovered.CompareAndSwap(0, s.now().UnixNano())
	return seq, nil
}

// compact persists the post-refit state — model first, then the training
// snapshot + journal rotation as one CompactThrough — so a restart resumes
// from the refit instead of replaying the journal over the old base. It
// runs OFF the online lock: x is a deep copy covering exactly the records
// with Seq ≤ covered, and records appended while the writes run have later
// sequences and survive the rotation, so observes never stall behind
// compaction I/O. Failures are not fatal: the journal still holds every
// record, and replay over the previous snapshot reconstructs the same state.
func (s *Server) compact(m *core.Model, x *tensor.Coord, covered uint64, gen int64) {
	s.durMu.Lock()
	defer s.durMu.Unlock()
	if gen < s.durLastGen {
		// A reload re-based the directory after this compaction's inputs
		// were captured; writing them now would resurrect the superseded
		// state on the next restart.
		return
	}
	if covered < s.durLastCovered {
		// A compaction covering more of the journal already committed (a
		// size-triggered pass racing a refit's, in either order). Writing
		// this older capture would pair a training snapshot that lacks
		// records covered..durLastCovered with a journal that already
		// rotated them out — observations lost on the next replay.
		return
	}
	t0 := time.Now()
	if err := core.SaveModel(s.dir.ModelPath(), m); err != nil {
		s.event(slog.LevelError, "compaction failed",
			"stage", "persist model", "error", err, "detail", "journal kept; will replay on restart")
		s.met.compactionErrors.Add(1)
		return
	}
	if err := s.journal.CompactThrough(s.dir.TensorPath(), x, covered); err != nil {
		s.event(slog.LevelError, "compaction failed",
			"stage", "rotate journal", "error", err, "detail", "journal kept; will replay on restart")
		s.met.compactionErrors.Add(1)
		return
	}
	s.durLastCovered = covered
	s.met.compactions.Add(1)
	s.event(slog.LevelInfo, "journal compacted", "covered", covered, "duration", time.Since(t0))
	// Reset the age clock: clear first, then re-arm if records appended while
	// the writes ran are already waiting. An append racing this sequence
	// either arms the cleared clock itself (its CAS from 0 wins) or is seen
	// by the Len check — the clock can land a moment late, never stay stale.
	s.oldestUncovered.Store(0)
	if s.journal.Len() > 0 {
		s.oldestUncovered.CompareAndSwap(0, s.now().UnixNano())
	}
}

// maybeCompactBySize starts a background journal compaction — without a
// refit — once the journal file exceeds Options.CompactBytes. It closes the
// unbounded-journal gap for servers running with refits disabled: the
// current grown model and a deep copy of the accumulated training set are
// snapshotted into the data dir (the same covered-sequence container a
// refit's compaction uses), and the covered records rotate out of the
// journal. A restart then loads the persisted model and replays only what
// arrived after the capture — bit-identical state, no refit required.
//
// The caller holds online.mu (or is the single-threaded startup), so the
// capture — model snapshot, training-set copy, covered sequence — is
// consistent with the fitter. The writes themselves run off the lock; a
// concurrent refit's compaction is ordered by durMu and the covered-sequence
// guard in compact. One size-triggered pass runs at a time (compactBusy),
// and none while a refit is in flight — the refit's own compaction, which
// also persists the refit's better model, is moments away.
func (s *Server) maybeCompactBySize(f *core.Fitter) {
	o := &s.online
	if s.dir == nil || s.opts.CompactBytes <= 0 || o.refitting {
		return
	}
	// An empty journal is all header; nothing to compact no matter how small
	// the threshold.
	if s.journal.Len() == 0 || s.journal.Size() < s.opts.CompactBytes {
		return
	}
	if !s.compactBusy.CompareAndSwap(false, true) {
		return
	}
	m := f.Snapshot()
	x := f.TrainingSet()
	covered := s.journal.LastSeq()
	gen := o.gen
	go func() {
		defer s.compactBusy.Store(false)
		s.compact(m, x, covered, gen)
	}()
}

// ageCompactLoop drives CompactAge: a ticker at a fraction of the bound
// checks the oldest-uncovered clock until the server closes. Started by New
// only when a DataDir and a CompactAge are both configured.
func (s *Server) ageCompactLoop() {
	interval := s.opts.CompactAge / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.life.Done():
			return
		case <-t.C:
			s.compactByAge()
		}
	}
}

// compactByAge starts a background compaction once the oldest uncovered
// journal record has waited longer than Options.CompactAge. The capture —
// model snapshot, training-set copy, covered sequence — happens under
// online.mu exactly like maybeCompactBySize's, and the same deferrals
// apply: never while a refit is in flight (its own compaction is moments
// away), one pass at a time (compactBusy), writes off the lock.
func (s *Server) compactByAge() {
	armed := s.oldestUncovered.Load()
	if armed == 0 || s.now().Sub(time.Unix(0, armed)) < s.opts.CompactAge {
		return
	}
	o := &s.online
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.refitting || o.fitter == nil || s.journal.Len() == 0 {
		return
	}
	if !s.compactBusy.CompareAndSwap(false, true) {
		return
	}
	m := o.fitter.Snapshot()
	x := o.fitter.TrainingSet()
	covered := s.journal.LastSeq()
	gen := o.gen
	go func() {
		defer s.compactBusy.Store(false)
		s.compact(m, x, covered, gen)
	}()
}

// rebaseDurable resets the durable state around a committed reload: the
// journaled observations are superseded (a reload drops the online state,
// so a restart must not replay them), the training sidecar no longer
// describes the new model, and the new model becomes the persisted base.
// The ordering keeps every crash-exposed state consistent: journal first
// (worst case: the old base without its observations — exactly what the
// reload discarded anyway), sidecar second, model last (the commit). A
// failure mid-way is logged and counted, never propagated: the reload has
// already happened in memory, and aborting here could not un-happen it. The
// journal is poisoned instead — mixing pre-reload records (or an old base
// model) with records validated against the reloaded model would leave a
// directory whose replay cannot succeed, so further observes are refused
// (500) until an operator restarts or a later reload re-bases cleanly. The
// caller holds online.mu (so observes cannot journal a new-state record
// into the journal this is about to reset) and has bumped online.gen; the
// generation is recorded under durMu so an in-flight compaction captured
// before this reload skips its now-superseded write.
func (s *Server) rebaseDurable(m *core.Model, gen int64) {
	if s.dir == nil {
		return
	}
	s.durMu.Lock()
	defer s.durMu.Unlock()
	s.durLastGen = gen
	// The reset discards everything journaled so far; record its sequence so
	// a stale compaction capture cannot re-cover rotated records.
	s.durLastCovered = s.journal.LastSeq()
	err := s.journal.Reset()
	// The reset discarded every journaled record; nothing uncovered remains
	// to age (the caller holds online.mu, so no observe can append yet).
	// The applied sequence holds at the journal tail — sequences continue
	// across the rotation, and followers re-bootstrap on the generation
	// bump regardless.
	s.repl.appliedSeq.Store(s.journal.LastSeq())
	s.oldestUncovered.Store(0)
	if err == nil {
		err = s.dir.RemoveTrainingTensor()
	}
	if err == nil {
		err = core.SaveModel(s.dir.ModelPath(), m)
	}
	if err != nil {
		s.event(slog.LevelError, "reload re-base failed", "error", err,
			"detail", "refusing further observes (journal poisoned) so the data dir cannot mix generations")
		s.met.rebaseErrors.Add(1)
		s.journal.Poison(err)
		return
	}
	s.event(slog.LevelInfo, "data dir re-based", "model", s.dir.ModelPath())
}

// --- held-out RMSE tracking ---

// loadHoldout loads the held-out tensor (text or binary, auto-detected)
// without scoring it; New scores the served model once startup replay has
// settled, so /metrics reports RMSE from the first scrape. Loading early
// lets resumed fitters attach the holdout as the Sparsify scoring set.
func (s *Server) loadHoldout() error {
	if s.opts.HoldoutPath == "" {
		return nil
	}
	m := s.snapshot().model
	x, err := tensor.ReadFile(s.opts.HoldoutPath, m.Order(), nil)
	if err != nil {
		return fmt.Errorf("serve: holdout: %w", err)
	}
	s.holdout = x
	return nil
}

// updateHoldout rescores the held-out set against m and publishes the gauge.
// Called with the initial model, after every refit swap, and after reloads.
func (s *Server) updateHoldout(m *core.Model) {
	if s.holdout == nil {
		return
	}
	s.met.holdoutRMSE.Store(math.Float64bits(m.RMSE(s.holdout)))
	s.met.holdoutSet.Store(true)
}

// --- bearer-token auth ---

// requireAuth guards a mutating endpoint with the configured bearer token:
// requests must carry "Authorization: Bearer <token>" or are answered 401.
// Read-only endpoints stay open — the first slice of serving auth covers the
// calls that can change the model. A server without a token passes handlers
// through untouched.
func (s *Server) requireAuth(h http.Handler) http.Handler {
	if s.opts.AuthToken == "" {
		return h
	}
	want := []byte("Bearer " + s.opts.AuthToken)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got := []byte(r.Header.Get("Authorization"))
		if subtle.ConstantTimeCompare(got, want) != 1 {
			s.met.authFailures.Add(1)
			w.Header().Set("WWW-Authenticate", `Bearer realm="ptucker"`)
			writeJSON(w, http.StatusUnauthorized, errorResponse{Error: "missing or invalid bearer token"})
			return
		}
		h.ServeHTTP(w, r)
	})
}
