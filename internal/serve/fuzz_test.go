package serve

import (
	"encoding/json"
	"testing"
)

// FuzzObserveDecode drives the /v1/observe decode path: arbitrary bytes are
// parsed as the request JSON and planned against a fixed 3x4x5 model shape.
// A plan that comes back must account for every observation exactly once,
// with fold-ins arriving in contiguous next-slice order per mode — the same
// invariants applyPlan relies on to mutate the fitter without bounds checks.
func FuzzObserveDecode(f *testing.F) {
	f.Add([]byte(`{"observations":[{"index":[0,1,2],"value":1.5}]}`))
	f.Add([]byte(`{"observations":[]}`))
	f.Add([]byte(`{}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var req observeRequest
		if err := json.Unmarshal(data, &req); err != nil {
			return // not a request: fine
		}
		dims := []int{3, 4, 5}
		plan, err := planObservations(dims, req.Observations)
		if err != nil {
			return // rejected batch: fine
		}
		placed := len(plan.appends)
		sim := append([]int(nil), dims...)
		for _, g := range plan.folds {
			if g.mode < 0 || g.mode >= len(dims) {
				t.Fatalf("fold group targets mode %d of a %d-mode model", g.mode, len(dims))
			}
			if g.index != sim[g.mode] {
				t.Fatalf("fold group lands at index %d in mode %d; next slice is %d", g.index, g.mode, sim[g.mode])
			}
			if len(g.obs) == 0 {
				t.Fatalf("empty fold group for mode %d index %d", g.mode, g.index)
			}
			sim[g.mode]++
			placed += len(g.obs)
		}
		if placed != len(req.Observations) {
			t.Fatalf("plan places %d of %d observations", placed, len(req.Observations))
		}
	})
}
