package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	expo "repro/internal/metrics"
	"repro/internal/store"
)

// registryDir lays out a models directory with two bare-file tenants and
// one durable tenant, returning the directory and the in-memory models by
// tenant name (for bit-identity checks).
func registryDir(t *testing.T) (string, map[string]*core.Model) {
	t.Helper()
	dir := t.TempDir()
	models := map[string]*core.Model{
		"alpha": fitModel(t, 11),
		"beta":  fitModel(t, 22),
		"gamma": fitModel(t, 33),
	}
	for _, name := range []string{"alpha", "beta"} {
		if err := core.SaveModel(filepath.Join(dir, name+".ptkm"), models[name]); err != nil {
			t.Fatal(err)
		}
	}
	gdir := filepath.Join(dir, "gamma")
	if err := os.MkdirAll(gdir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := core.SaveModel(filepath.Join(gdir, store.ModelFile), models["gamma"]); err != nil {
		t.Fatal(err)
	}
	return dir, models
}

func testRegistry(t *testing.T, opts RegistryOptions) (*Registry, *httptest.Server) {
	t.Helper()
	r, err := NewRegistry(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(r.Handler())
	t.Cleanup(func() {
		ts.Close()
		r.Close()
	})
	return r, ts
}

func predictVia(t *testing.T, client func(body string) (int, []byte), idx []int) float64 {
	t.Helper()
	status, body := client(fmt.Sprintf(`{"index":[%d,%d,%d]}`, idx[0], idx[1], idx[2]))
	if status != http.StatusOK {
		t.Fatalf("predict %v: status %d: %s", idx, status, body)
	}
	var resp predictResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	return resp.Value
}

// Both routing schemes reach the named tenant, and every prediction through
// the registry is bit-identical to the tenant's own model.
func TestRegistryRoutingBitIdentical(t *testing.T) {
	dir, models := registryDir(t)
	_, ts := testRegistry(t, RegistryOptions{ModelsDir: dir, Base: Options{Mmap: true}})

	rng := rand.New(rand.NewSource(5))
	for name, m := range models {
		prefixed := func(body string) (int, []byte) {
			return postJSON(t, ts.URL+"/m/"+name+"/v1/predict", body)
		}
		headered := func(body string) (int, []byte) {
			req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/predict", strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set("Content-Type", "application/json")
			req.Header.Set(ModelHeader, name)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			raw, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			return resp.StatusCode, raw
		}
		for i := 0; i < 20; i++ {
			idx := []int{rng.Intn(20), rng.Intn(16), rng.Intn(12)}
			want := m.Predict(idx)
			if got := predictVia(t, prefixed, idx); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("%s prefixed predict %v: got %v want %v", name, idx, got, want)
			}
			if got := predictVia(t, headered, idx); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("%s header predict %v: got %v want %v", name, idx, got, want)
			}
		}
	}

	// Unknown and unroutable requests are refused, not misrouted.
	if status, _ := postJSON(t, ts.URL+"/m/nope/v1/predict", `{"index":[1,2,3]}`); status != http.StatusNotFound {
		t.Fatalf("unknown model: status %d, want 404", status)
	}
	if status, _ := postJSON(t, ts.URL+"/v1/predict", `{"index":[1,2,3]}`); status != http.StatusNotFound {
		t.Fatalf("no model named: status %d, want 404", status)
	}
}

// /healthz reports every tenant without loading any; first traffic loads
// lazily; a durable tenant journals into its own directory while bare-file
// tenants answer the replication endpoints 503 (no journal to stream).
func TestRegistryLazyLoadAndTenantIdentity(t *testing.T) {
	dir, _ := registryDir(t)
	r, ts := testRegistry(t, RegistryOptions{ModelsDir: dir, Base: Options{Mmap: true}})

	var st registryStatus
	getJSON(t, ts.URL+"/healthz", &st)
	if len(st.Models) != 3 {
		t.Fatalf("healthz models: %+v", st.Models)
	}
	for _, m := range st.Models {
		if m.Loaded {
			t.Fatalf("tenant %s loaded by a probe", m.Name)
		}
		if m.Durable != (m.Name == "gamma") {
			t.Fatalf("tenant %s durable=%v", m.Name, m.Durable)
		}
	}

	// First touch loads; observes land in gamma's own journal.
	if status, body := postJSON(t, ts.URL+"/m/gamma/v1/observe",
		`{"observations":[{"index":[1,2,3],"value":0.5}]}`); status != http.StatusOK {
		t.Fatalf("observe gamma: %d %s", status, body)
	}
	getJSON(t, ts.URL+"/healthz", &st)
	for _, m := range st.Models {
		if m.Loaded != (m.Name == "gamma") {
			t.Fatalf("after touching gamma: %s loaded=%v", m.Name, m.Loaded)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "gamma", store.JournalFile)); err != nil {
		t.Fatalf("gamma observe left no journal in its data dir: %v", err)
	}

	// A bare-file tenant has no journal: replication politely unavailable.
	resp, err := http.Get(ts.URL + "/m/alpha/v1/journal?from=1&epoch=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("journal stream on bare tenant: %d, want 503", resp.StatusCode)
	}
	_ = r
}

// A reload addressed to one tenant swaps that tenant only.
func TestRegistryPerTenantReload(t *testing.T) {
	dir, models := registryDir(t)
	_, ts := testRegistry(t, RegistryOptions{ModelsDir: dir, Base: Options{Mmap: true}})

	idx := []int{3, 4, 5}
	alphaBefore := models["alpha"].Predict(idx)
	betaBefore := models["beta"].Predict(idx)

	// Swap beta's file for a different fit and reload only beta.
	next := fitModel(t, 44)
	nextPath := filepath.Join(dir, "next.ptkm")
	if err := core.SaveModel(nextPath, next); err != nil {
		t.Fatal(err)
	}
	if status, body := postJSON(t, ts.URL+"/m/beta/v1/reload",
		fmt.Sprintf(`{"model":%q}`, nextPath)); status != http.StatusOK {
		t.Fatalf("reload beta: %d %s", status, body)
	}

	alphaClient := func(body string) (int, []byte) { return postJSON(t, ts.URL+"/m/alpha/v1/predict", body) }
	betaClient := func(body string) (int, []byte) { return postJSON(t, ts.URL+"/m/beta/v1/predict", body) }
	if got := predictVia(t, alphaClient, idx); math.Float64bits(got) != math.Float64bits(alphaBefore) {
		t.Fatalf("alpha changed by beta's reload: %v vs %v", got, alphaBefore)
	}
	got := predictVia(t, betaClient, idx)
	if math.Float64bits(got) != math.Float64bits(next.Predict(idx)) {
		t.Fatalf("beta did not reload: %v", got)
	}
	if got == betaBefore {
		t.Fatalf("reload fixture models predict identically; pick different seeds")
	}
}

// The merged scrape parses clean, labels every tenant family with its model
// name, emits registry-scoped families, and emits runtime families once.
func TestRegistryMergedMetrics(t *testing.T) {
	dir, _ := registryDir(t)
	_, ts := testRegistry(t, RegistryOptions{ModelsDir: dir, Base: Options{Mmap: true}})

	for _, name := range []string{"alpha", "gamma"} {
		if status, body := postJSON(t, ts.URL+"/m/"+name+"/v1/predict", `{"index":[1,2,3]}`); status != http.StatusOK {
			t.Fatalf("predict %s: %d %s", name, status, body)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)

	fams, err := expo.ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatalf("merged scrape does not parse: %v\n%s", err, text)
	}
	for _, want := range []string{
		"ptucker_registry_models", "ptucker_registry_models_loaded",
		"ptucker_registry_evictions_total", "ptucker_registry_mapped_bytes",
		"ptucker_requests_total", "ptucker_model_mapped_bytes", "ptucker_goroutines",
	} {
		if fams[want] == nil {
			t.Errorf("merged scrape lacks family %s", want)
		}
	}
	for _, name := range []string{"alpha", "gamma"} {
		if !strings.Contains(text, `model="`+name+`"`) {
			t.Errorf("no samples labeled model=%q", name)
		}
	}
	if strings.Contains(text, `model="beta"`) {
		t.Error("cold tenant beta appears in the scrape (scrapes must not cold-load)")
	}
	if n := strings.Count(text, "\nptucker_goroutines"); n != 1 {
		t.Errorf("runtime gauge emitted %d times, want once", n)
	}
	if n := strings.Count(text, "# TYPE ptucker_requests_total counter"); n != 1 {
		t.Errorf("family ptucker_requests_total declared %d times, want once", n)
	}
}

// mappedTenantBytes probes whether this platform maps models at all and
// how big one registry fixture model maps; eviction tests skip on
// platforms where models heap-load (no mapped bytes to bound).
func mappedTenantBytes(t *testing.T, path string) int64 {
	t.Helper()
	src, err := store.OpenModel(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if !src.Mapped() {
		t.Skip("platform does not map models; no mapped-bytes budget to test")
	}
	return src.MappedBytes()
}

// Crossing the mapped-bytes budget evicts the least-recently-touched
// tenant; the evicted tenant reloads transparently on its next touch.
func TestRegistryEvictsLRU(t *testing.T) {
	dir, _ := registryDir(t)
	one := mappedTenantBytes(t, filepath.Join(dir, "alpha.ptkm"))

	r, ts := testRegistry(t, RegistryOptions{
		ModelsDir:      dir,
		MaxMappedBytes: one + one/2, // one resident model, never two
		Base:           Options{Mmap: true},
	})

	touch := func(name string) {
		if status, body := postJSON(t, ts.URL+"/m/"+name+"/v1/predict", `{"index":[1,2,3]}`); status != http.StatusOK {
			t.Fatalf("predict %s: %d %s", name, status, body)
		}
	}
	touch("alpha")
	touch("beta") // budget now exceeded: alpha is the LRU victim

	var st registryStatus
	getJSON(t, ts.URL+"/healthz", &st)
	loaded := map[string]bool{}
	for _, m := range st.Models {
		loaded[m.Name] = m.Loaded
	}
	if loaded["alpha"] || !loaded["beta"] {
		t.Fatalf("after eviction: %+v", loaded)
	}
	if r.evictions.Load() == 0 {
		t.Fatal("no eviction counted")
	}
	if got := r.MappedBytes(); got > one+one/2 {
		t.Fatalf("mapped bytes %d still over budget %d", got, one+one/2)
	}

	touch("alpha") // transparent reload; beta becomes the victim
	getJSON(t, ts.URL+"/healthz", &st)
	for _, m := range st.Models {
		if m.Name == "alpha" && !m.Loaded {
			t.Fatal("evicted tenant did not reload on touch")
		}
	}
}

// An eviction must wait for in-flight requests on the victim: while a
// request holds the tenant read-locked, the mapping stays valid and serves
// bit-correct predictions; the unmap happens only after release.
func TestRegistryEvictionWaitsForInFlight(t *testing.T) {
	dir, models := registryDir(t)
	one := mappedTenantBytes(t, filepath.Join(dir, "alpha.ptkm"))

	r, err := NewRegistry(RegistryOptions{
		ModelsDir:      dir,
		MaxMappedBytes: one + one/2,
		Base:           Options{Mmap: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// In-flight request on alpha: acquire holds the tenant read lock
	// exactly as serveTenant does for a live request.
	h, release, err := r.acquire("alpha")
	if err != nil {
		t.Fatal(err)
	}
	alphaT := r.tenants["alpha"]

	// Loading beta pushes the total over budget; its eviction pass blocks
	// on alpha's write lock until our in-flight request releases.
	betaDone := make(chan error, 1)
	go func() {
		_, rel, err := r.acquire("beta")
		if err == nil {
			rel()
		}
		betaDone <- err
	}()

	// While held: alpha stays loaded and its mapping serves correctly.
	deadline := time.After(200 * time.Millisecond)
	idx := []int{2, 3, 4}
	want := models["alpha"].Predict(idx)
	for {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/v1/predict",
			strings.NewReader(fmt.Sprintf(`{"index":[%d,%d,%d]}`, idx[0], idx[1], idx[2])))
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("in-flight predict on eviction victim: %d %s", rec.Code, rec.Body)
		}
		var resp predictResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(resp.Value) != math.Float64bits(want) {
			t.Fatalf("prediction changed under pending eviction: %v vs %v", resp.Value, want)
		}
		if !alphaT.loaded.Load() {
			t.Fatal("alpha evicted while a request held it")
		}
		select {
		case err := <-betaDone:
			t.Fatalf("beta acquire finished while the victim was held in-flight: %v", err)
		case <-deadline:
		default:
			continue
		}
		break
	}

	// Release the in-flight request: the blocked eviction proceeds, beta's
	// acquire completes, and alpha ends up unloaded.
	release()
	if err := <-betaDone; err != nil {
		t.Fatalf("beta load after release: %v", err)
	}
	waitFor(t, "victim unloaded after the in-flight request released", func() bool { return !alphaT.loaded.Load() })
}
