package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
)

// benchIndexes samples n valid multi-indices for the benchmark model.
func benchIndexes(b *testing.B, p *core.Predictor, n int) [][]int {
	b.Helper()
	rng := rand.New(rand.NewSource(17))
	dims := p.Dims()
	idxs := make([][]int, n)
	for i := range idxs {
		idx := make([]int, len(dims))
		for k, d := range dims {
			idx[k] = rng.Intn(d)
		}
		idxs[i] = idx
	}
	return idxs
}

// BenchmarkServeCoalescedPredict drives concurrent single predictions
// through the micro-batching coalescer — the hot path of /v1/predict under
// load — without HTTP overhead, so the measurement isolates batching.
// shards=1 is the single-dispatcher baseline; shards=4 shows the sharded
// dispatchers assembling flushes in parallel (run with -cpu 8 to see the
// separation on a many-core box).
func BenchmarkServeCoalescedPredict(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			m := fitModel(b, 7)
			s, err := New(Options{Model: m, MaxBatch: 64, Shards: shards})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			idxs := benchIndexes(b, core.NewPredictor(m), 1024)

			b.ReportAllocs()
			// Many more in-flight callers than procs, as a loaded server
			// sees: queues accumulate during each flush, so batches actually
			// form and dispatch throughput (not caller wakeup latency) is
			// what's measured.
			b.SetParallelism(8)
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if _, err := s.coal.predict(context.Background(), idxs[i%len(idxs)]); err != nil {
						b.Error(err)
						return
					}
					i++
				}
			})
			b.ReportMetric(float64(s.met.coalesced.Load())/float64(max(1, s.met.flushes.Load())), "preds/flush")
		})
	}
}

// BenchmarkServeHTTPPredict measures the full stack: HTTP round trip, JSON
// decode, coalescer, kernel, JSON encode.
func BenchmarkServeHTTPPredict(b *testing.B) {
	m := fitModel(b, 7)
	s, err := New(Options{Model: m, MaxBatch: 64})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	idxs := benchIndexes(b, core.NewPredictor(m), 256)
	bodies := make([]string, len(idxs))
	for i, idx := range idxs {
		raw, _ := json.Marshal(predictRequest{Index: idx})
		bodies[i] = string(raw)
	}

	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			resp, err := http.Post(ts.URL+"/v1/predict", "application/json", strings.NewReader(bodies[i%len(bodies)]))
			if err != nil {
				b.Error(err)
				return
			}
			var pr predictResponse
			if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
				b.Error(err)
				resp.Body.Close()
				return
			}
			resp.Body.Close()
			i++
		}
	})
}

// BenchmarkServeRecommend measures the contracted top-K path of
// /v1/recommend at the Recommender level: one core contraction plus a dense
// candidate sweep per query.
func BenchmarkServeRecommend(b *testing.B) {
	m := fitModel(b, 7)
	s, err := New(Options{Model: m})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	snap := s.snapshot()

	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := snap.rec.TopK([]int{3, 5, 2}, 0, 10); err != nil {
				b.Error(err)
				return
			}
		}
	})
}
