package serve

import (
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	expo "repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/replicate"
	"repro/internal/tensor"
)

// logBuffer is a concurrency-safe sink for the server's structured log
// stream: handler goroutines (and background refit/watch loops) write while
// the test reads.
type logBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (lb *logBuffer) Write(p []byte) (int, error) {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	return lb.b.Write(p)
}

func (lb *logBuffer) String() string {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	return lb.b.String()
}

// logServer builds a testServer whose structured log stream (JSON, at the
// given level) is captured for inspection.
func logServer(t testing.TB, opts Options, level string) (*Server, string, *logBuffer) {
	t.Helper()
	buf := &logBuffer{}
	logger, err := obs.NewLogger(buf, "json", level)
	if err != nil {
		t.Fatal(err)
	}
	opts.Logger = logger
	s, ts := testServer(t, opts)
	return s, ts.URL, buf
}

// TestRequestIDEcho: a clean caller-supplied correlation ID is echoed on the
// response and lands on the access-log line; a dirty one is replaced by a
// generated ID, never echoed back.
func TestRequestIDEcho(t *testing.T) {
	_, base, buf := logServer(t, Options{}, "debug")

	const id = "test-corr-id.01"
	req, err := http.NewRequest(http.MethodPost, base+"/v1/predict",
		strings.NewReader(`{"index":[1,2,3]}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.RequestIDHeader, id)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(obs.RequestIDHeader); got != id {
		t.Fatalf("response echoed request ID %q, want %q", got, id)
	}
	log := buf.String()
	if !strings.Contains(log, `"request_id":"`+id+`"`) {
		t.Fatalf("access log does not carry request_id=%s:\n%s", id, log)
	}
	if !strings.Contains(log, `"endpoint":"predict"`) {
		t.Fatalf("access log does not name the endpoint:\n%s", log)
	}

	// A hostile or malformed ID must not be echoed or logged verbatim.
	const dirty = "spaces and \"quotes\""
	req, err = http.NewRequest(http.MethodPost, base+"/v1/predict",
		strings.NewReader(`{"index":[1,2,3]}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.RequestIDHeader, dirty)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	got := resp.Header.Get(obs.RequestIDHeader)
	if got == dirty || !obs.CleanRequestID(got) {
		t.Fatalf("dirty request ID not replaced: echoed %q", got)
	}
}

// TestFollowerRequestIDPropagation: the replication client stamps its
// correlation IDs on bootstrap and poll requests, and the primary's access
// log carries them — a slow follower fetch is findable in the primary's log.
func TestFollowerRequestIDPropagation(t *testing.T) {
	_, base, buf := logServer(t, Options{DataDir: t.TempDir()}, "debug")

	const id = "follower-trace-7f"
	cl := &replicate.Client{
		Primary:   base,
		PollWait:  50 * time.Millisecond,
		RequestID: func() string { return id },
	}
	bs, err := cl.Bootstrap(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ch, err := cl.Poll(context.Background(), bs.Identity, bs.Covered)
	if err != nil {
		t.Fatal(err)
	}
	if ch.RequestID != id {
		t.Fatalf("poll chunk echoed request ID %q, want %q", ch.RequestID, id)
	}
	log := buf.String()
	for _, endpoint := range []string{"bootstrap", "journal"} {
		want := `"endpoint":"` + endpoint + `"`
		line := ""
		for _, l := range strings.Split(log, "\n") {
			if strings.Contains(l, want) {
				line = l
				break
			}
		}
		if line == "" {
			t.Fatalf("primary access log has no %s line:\n%s", endpoint, log)
		}
		if !strings.Contains(line, `"request_id":"`+id+`"`) {
			t.Fatalf("primary %s line lost the follower's request ID:\n%s", endpoint, line)
		}
	}
}

// TestSlowRequestWarn: with a threshold every request exceeds, the access
// line escalates to warn — visible even when debug access logs are off.
func TestSlowRequestWarn(t *testing.T) {
	_, base, buf := logServer(t, Options{SlowRequest: time.Nanosecond}, "warn")

	resp, err := http.Post(base+"/v1/predict", "application/json",
		strings.NewReader(`{"index":[1,2,3]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	log := buf.String()
	if !strings.Contains(log, `"msg":"slow request"`) {
		t.Fatalf("no slow-request warning at threshold 1ns:\n%s", log)
	}
	if !strings.Contains(log, `"slow_threshold"`) || !strings.Contains(log, `"endpoint":"predict"`) {
		t.Fatalf("slow-request warning lacks detail:\n%s", log)
	}

	// Without a threshold the same logger stays silent at warn level.
	_, base2, buf2 := logServer(t, Options{}, "warn")
	resp, err = http.Post(base2+"/v1/predict", "application/json",
		strings.NewReader(`{"index":[1,2,3]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if log := buf2.String(); strings.Contains(log, "slow request") {
		t.Fatalf("slow-request warning fired without a threshold:\n%s", log)
	}
}

// TestReadmeDocumentsMetrics: every metric family a live primary and
// follower emit must appear in the README's Observability section — the
// reference cannot rot silently.
func TestReadmeDocumentsMetrics(t *testing.T) {
	// A primary exercising every conditional family: durable (journal +
	// replication-primary groups), sharded coalescer, and a holdout set.
	rng := rand.New(rand.NewSource(51))
	hold := tensor.NewCoord([]int{20, 16, 12})
	for hold.NNZ() < 50 {
		hold.MustAppend([]int{rng.Intn(20), rng.Intn(16), rng.Intn(12)}, rng.Float64())
	}
	holdPath := filepath.Join(t.TempDir(), "holdout.tns")
	if err := tensor.WriteFile(holdPath, hold); err != nil {
		t.Fatal(err)
	}
	_, pts := testServer(t, Options{
		DataDir:     t.TempDir(),
		Shards:      2,
		HoldoutPath: holdPath,
		Pprof:       true,
	})
	follower, err := New(Options{Follow: pts.URL, PollWait: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	fts := httptest.NewServer(follower.Handler())
	defer fts.Close()

	families := map[string]bool{}
	for _, base := range []string{pts.URL, fts.URL} {
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		fams, err := expo.ParseExposition(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("scrape %s/metrics does not parse: %v", base, err)
		}
		for name := range fams {
			families[name] = true
		}
	}
	if len(families) < 30 {
		t.Fatalf("only %d families scraped; the fixture server lost coverage", len(families))
	}

	readme, err := os.ReadFile(filepath.Join("..", "..", "README.md"))
	if err != nil {
		t.Fatal(err)
	}
	doc := string(readme)
	for name := range families {
		if !strings.Contains(doc, "`"+name+"`") {
			t.Errorf("README does not document metric family %s", name)
		}
	}
}

// TestPprofAuth: the profiling endpoints exist only with Options.Pprof, and
// sit behind the bearer token when one is configured.
func TestPprofAuth(t *testing.T) {
	_, off := testServer(t, Options{AuthToken: "tok"})
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof off: GET /debug/pprof/ = %d, want 404", resp.StatusCode)
	}

	_, on := testServer(t, Options{Pprof: true, AuthToken: "tok"})
	resp, err = http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("pprof without token = %d, want 401", resp.StatusCode)
	}

	req, err := http.NewRequest(http.MethodGet, on.URL+"/debug/pprof/", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer tok")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof with token = %d, want 200", resp.StatusCode)
	}

	// Without a configured token the profiler is open (same policy as the
	// mutating endpoints).
	_, open := testServer(t, Options{Pprof: true})
	resp, err = http.Get(open.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof open = %d, want 200", resp.StatusCode)
	}
}
