package serve

import (
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/store"
)

// followerServer builds a follower Server plus an httptest front. (The
// generic testServer helper injects a Model when none is set, which a
// follower must reject.)
func followerServer(t testing.TB, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// proxyServer is a stable address in front of a swappable handler, so a test
// can "restart" a primary without changing the URL its follower points at.
// A nil handler answers 502 — the primary is down.
func proxyServer(t testing.TB) (*httptest.Server, *atomic.Pointer[http.Handler]) {
	t.Helper()
	var h atomic.Pointer[http.Handler]
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hp := h.Load()
		if hp == nil {
			http.Error(w, "primary down", http.StatusBadGateway)
			return
		}
		(*hp).ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	return ts, &h
}

func setProxy(p *atomic.Pointer[http.Handler], s *Server) {
	if s == nil {
		p.Store(nil)
		return
	}
	h := s.Handler()
	p.Store(&h)
}

// tryGrid is predictionGrid without the fatal error handling: it reports
// false while the server's model still lacks rows the reference has folded,
// so convergence loops can poll it.
func tryGrid(s *Server) ([]uint64, bool) {
	snap := s.snapshot()
	dims := snap.dims
	rng := rand.New(rand.NewSource(99))
	var bits []uint64
	for i := 0; i < 200; i++ {
		idx := make([]int, len(dims))
		for k, d := range dims {
			idx[k] = rng.Intn(d)
		}
		v, err := snap.pred.PredictChecked(idx)
		if err != nil {
			return nil, false
		}
		bits = append(bits, math.Float64bits(v))
	}
	for k, d := range dims {
		idx := make([]int, len(dims))
		idx[k] = d - 1
		v, err := snap.pred.PredictChecked(idx)
		if err != nil {
			return nil, false
		}
		bits = append(bits, math.Float64bits(v))
	}
	return bits, true
}

func gridsMatch(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// waitConverged polls until the follower serves the same prediction grid as
// the primary, then fails loudly if it never does.
func waitConverged(t testing.TB, primary, follower *Server) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		want, ok1 := tryGrid(primary)
		got, ok2 := tryGrid(follower)
		if ok1 && ok2 && gridsMatch(want, got) {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("follower never converged: primary seq %d, follower seq %d",
		primary.AppliedSeq(), follower.AppliedSeq())
}

// recommendGrid flattens a deterministic set of top-K queries into
// comparable bits: ranking indices plus raw score bits.
func recommendGrid(t testing.TB, s *Server) []uint64 {
	t.Helper()
	snap := s.snapshot()
	dims := snap.dims
	rng := rand.New(rand.NewSource(98))
	var bits []uint64
	for i := 0; i < 40; i++ {
		q := make([]int, len(dims))
		for k, d := range dims {
			q[k] = rng.Intn(d)
		}
		recs, err := snap.rec.TopKExcluding(q, i%len(dims), 8, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			bits = append(bits, uint64(r.Index), math.Float64bits(r.Score))
		}
	}
	return bits
}

// TestFollowerConvergesBitIdentical is the tentpole acceptance test: a
// follower bootstrapped from a live primary tails its journal stream and
// answers /v1/predict and /v1/recommend bit-identically — including across
// fold-ins that grow the tensor — while refusing writes with a hint at the
// primary.
func TestFollowerConvergesBitIdentical(t *testing.T) {
	m := fitModel(t, 7)
	p, pts := testServer(t, Options{Model: m, DataDir: t.TempDir(),
		JournalSync: store.SyncPolicy{Mode: store.SyncAlways}})
	f, fts := followerServer(t, Options{Follow: pts.URL, PollWait: 100 * time.Millisecond})

	for _, b := range observeStream(61, 12) {
		postObserve(t, p, b)
	}
	waitConverged(t, p, f)
	sameBits(t, predictionGrid(t, p), predictionGrid(t, f), "follower vs primary")
	sameBits(t, recommendGrid(t, p), recommendGrid(t, f), "follower recommend vs primary")
	if f.AppliedSeq() != p.AppliedSeq() {
		t.Fatalf("applied seq %d vs primary %d", f.AppliedSeq(), p.AppliedSeq())
	}

	// Writes are refused with 403 and a Location hint at the only process
	// that can take them.
	for _, path := range []string{"/v1/observe", "/v1/reload"} {
		code, body := postJSON(t, fts.URL+path, `{}`)
		if code != http.StatusForbidden {
			t.Fatalf("%s on follower: %d %s", path, code, body)
		}
	}
	resp, err := http.Post(fts.URL+"/v1/observe", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if loc := resp.Header.Get("Location"); loc != pts.URL+"/v1/observe" {
		t.Fatalf("Location %q, want %q", loc, pts.URL+"/v1/observe")
	}

	// A follower is not a stream source: the replication endpoints redirect
	// to the primary too, so chained topologies fail fast.
	getCode := func(url string) int {
		r, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		return r.StatusCode
	}
	if code := getCode(fts.URL + "/v1/journal/bootstrap"); code != http.StatusForbidden {
		t.Fatalf("bootstrap on follower: %d", code)
	}

	// Both sides expose their replication metrics.
	get := func(url string) string {
		r, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 32<<10)
		for {
			n, err := r.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return sb.String()
	}
	pm := get(pts.URL + "/metrics")
	for _, name := range []string{"ptucker_journal_stream_clients", "ptucker_journal_stream_records_total",
		"ptucker_journal_bootstraps_served_total", "ptucker_primary_applied_seq"} {
		if !strings.Contains(pm, name) {
			t.Errorf("primary /metrics missing %s", name)
		}
	}
	fm := get(fts.URL + "/metrics")
	for _, name := range []string{"ptucker_replica_lag_seconds", "ptucker_replica_applied_seq",
		"ptucker_replica_bootstraps_total", "ptucker_replica_records_applied_total",
		"ptucker_replica_writes_rejected_total"} {
		if !strings.Contains(fm, name) {
			t.Errorf("follower /metrics missing %s", name)
		}
	}

	// Healthz declares the roles.
	var st statusResponse
	if err := json.Unmarshal([]byte(get(fts.URL+"/healthz")), &st); err != nil {
		t.Fatal(err)
	}
	if st.Role != "follower" || st.Primary != pts.URL || st.LagSeconds == nil {
		t.Fatalf("follower healthz: %+v", st)
	}
	if err := json.Unmarshal([]byte(get(pts.URL+"/healthz")), &st); err != nil {
		t.Fatal(err)
	}
	if st.Role != "primary" {
		t.Fatalf("primary healthz: %+v", st)
	}
}

// TestPrimaryRestartMidStream: the primary dies and comes back over the same
// data dir (a new epoch). The follower detects the identity change,
// re-bootstraps, and reconverges bit-identically — no divergence from
// whatever the old epoch's unstreamed tail might have been.
func TestPrimaryRestartMidStream(t *testing.T) {
	m := fitModel(t, 7)
	stream := observeStream(62, 12)
	dir := t.TempDir()
	proxy, ph := proxyServer(t)

	a, err := New(Options{Model: m, DataDir: dir,
		JournalSync: store.SyncPolicy{Mode: store.SyncAlways}})
	if err != nil {
		t.Fatal(err)
	}
	setProxy(ph, a)
	f, _ := followerServer(t, Options{Follow: proxy.URL, PollWait: 50 * time.Millisecond})

	for _, b := range stream[:6] {
		postObserve(t, a, b)
	}
	waitConverged(t, a, f)

	// Kill the primary; the follower's polls start failing and back off.
	setProxy(ph, nil)
	a.Close()

	// Restart over the same dir: the journal replays, the epoch bumps.
	b, err := New(Options{Model: m, DataDir: dir,
		JournalSync: store.SyncPolicy{Mode: store.SyncAlways}})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	setProxy(ph, b)

	for _, batch := range stream[6:] {
		postObserve(t, b, batch)
	}
	waitConverged(t, b, f)
	sameBits(t, predictionGrid(t, b), predictionGrid(t, f), "follower vs restarted primary")
	if got := f.met.replicaBootstraps.Load(); got != 2 {
		t.Fatalf("follower bootstrapped %d times, want 2 (startup + epoch change)", got)
	}
}

// TestFollowerRestartResumesLocally: a durable follower killed and restarted
// over its data dir resumes from the local journal copy — no re-bootstrap,
// no model re-download — and catches up on what it missed.
func TestFollowerRestartResumesLocally(t *testing.T) {
	m := fitModel(t, 7)
	stream := observeStream(63, 12)
	p, pts := testServer(t, Options{Model: m, DataDir: t.TempDir(),
		JournalSync: store.SyncPolicy{Mode: store.SyncAlways}})
	fdir := t.TempDir()

	f1, err := New(Options{Follow: pts.URL, DataDir: fdir, PollWait: 50 * time.Millisecond,
		JournalSync: store.SyncPolicy{Mode: store.SyncAlways}})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range stream[:8] {
		postObserve(t, p, b)
	}
	waitConverged(t, p, f1)
	f1.Close() // the "kill -9": SyncAlways put every applied record on disk

	// The primary moves on while the follower is down.
	for _, b := range stream[8:] {
		postObserve(t, p, b)
	}

	f2, err := New(Options{Follow: pts.URL, DataDir: fdir, PollWait: 50 * time.Millisecond,
		JournalSync: store.SyncPolicy{Mode: store.SyncAlways}})
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	waitConverged(t, p, f2)
	sameBits(t, predictionGrid(t, p), predictionGrid(t, f2), "resumed follower vs primary")
	if got := f2.met.replicaBootstraps.Load(); got != 0 {
		t.Fatalf("restarted follower bootstrapped %d times, want 0 (local resume)", got)
	}
}

// TestCompactionRacingStream: the primary compacts continuously under a live
// stream (CompactBytes small enough to rotate after every few batches). A
// follower that keeps up streams across the rotations; one that fell behind
// the new base gets 410 and re-bootstraps. Either way it reconverges
// bit-identically.
func TestCompactionRacingStream(t *testing.T) {
	m := fitModel(t, 7)
	stream := observeStream(64, 16)
	p, pts := testServer(t, Options{Model: m, DataDir: t.TempDir(), CompactBytes: 512,
		JournalSync: store.SyncPolicy{Mode: store.SyncAlways}})
	fdir := t.TempDir()

	f1, err := New(Options{Follow: pts.URL, DataDir: fdir, PollWait: 50 * time.Millisecond,
		JournalSync: store.SyncPolicy{Mode: store.SyncAlways}})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range stream[:4] {
		postObserve(t, p, b)
	}
	waitConverged(t, p, f1)
	covered := f1.AppliedSeq()
	f1.Close()

	// Feed enough through the primary that size-triggered compaction
	// rotates the journal base past the sleeping follower's position.
	for _, b := range stream[4:] {
		postObserve(t, p, b)
	}
	waitFor(t, "primary compaction past the follower", func() bool {
		return p.met.compactions.Load() > 0 && p.journal.BaseSeq() > covered
	})

	// Restart: the local resume works, but the first poll lands below the
	// primary's base — 410 — and the follower re-bootstraps.
	f2, err := New(Options{Follow: pts.URL, DataDir: fdir, PollWait: 50 * time.Millisecond,
		JournalSync: store.SyncPolicy{Mode: store.SyncAlways}})
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	waitConverged(t, p, f2)
	sameBits(t, predictionGrid(t, p), predictionGrid(t, f2), "follower vs compacted primary")
	waitFor(t, "re-bootstrap after 410", func() bool {
		return f2.met.replicaBootstraps.Load() == 1
	})
}

// TestRefitRebootstrapsFollower: a background refit publishes a model that no
// journal replay can derive, so the generation bump must push followers to
// re-bootstrap — and they end up serving the refit model bit-identically.
func TestRefitRebootstrapsFollower(t *testing.T) {
	m := fitModel(t, 7)
	p, pts := testServer(t, Options{Model: m, DataDir: t.TempDir(), RefitAfter: 20,
		JournalSync: store.SyncPolicy{Mode: store.SyncAlways}})
	f, _ := followerServer(t, Options{Follow: pts.URL, PollWait: 50 * time.Millisecond})

	for _, b := range observeStream(65, 10) {
		postObserve(t, p, b)
	}
	waitFor(t, "refit publish", func() bool { return p.met.refits.Load() > 0 })
	waitFor(t, "refit drain", func() bool {
		p.online.mu.Lock()
		done := !p.online.refitting
		p.online.mu.Unlock()
		return done
	})
	waitConverged(t, p, f)
	sameBits(t, predictionGrid(t, p), predictionGrid(t, f), "follower vs refit primary")
	if got := f.met.replicaBootstraps.Load(); got < 2 {
		t.Fatalf("follower bootstrapped %d times, want ≥ 2 (startup + refit generation)", got)
	}
}

// TestFollowerMaxLag: a follower whose primary goes silent turns /healthz
// 503 once the lag bound is crossed, and recovers to 200 when the primary
// returns.
func TestFollowerMaxLag(t *testing.T) {
	m := fitModel(t, 7)
	dir := t.TempDir()
	proxy, ph := proxyServer(t)
	p, err := New(Options{Model: m, DataDir: dir,
		JournalSync: store.SyncPolicy{Mode: store.SyncAlways}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	setProxy(ph, p)

	f, fts := followerServer(t, Options{Follow: proxy.URL,
		PollWait: 20 * time.Millisecond, MaxLag: 150 * time.Millisecond})
	waitConverged(t, p, f)

	health := func() (int, statusResponse) {
		resp, err := http.Get(fts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st statusResponse
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, st
	}
	waitFor(t, "healthy follower", func() bool {
		code, _ := health()
		return code == http.StatusOK
	})

	setProxy(ph, nil) // the primary vanishes
	waitFor(t, "staleness past MaxLag", func() bool {
		code, st := health()
		return code == http.StatusServiceUnavailable && st.Status == "stale"
	})

	setProxy(ph, p) // and returns
	waitFor(t, "recovery", func() bool {
		code, _ := health()
		return code == http.StatusOK
	})
}

// TestFollowerOptionValidation: option combinations that contradict follower
// mode fail fast instead of half-working.
func TestFollowerOptionValidation(t *testing.T) {
	m := fitModel(t, 7)
	p, pts := testServer(t, Options{Model: m, DataDir: t.TempDir(),
		JournalSync: store.SyncPolicy{Mode: store.SyncAlways}})
	_ = p

	bad := []Options{
		{Follow: pts.URL, Model: m},
		{Follow: pts.URL, RefitAfter: 5},
		{Follow: pts.URL, CompactAge: time.Minute},
	}
	for i, opts := range bad {
		if s, err := New(opts); err == nil {
			s.Close()
			t.Errorf("options %d accepted; want an error", i)
		}
	}

	// A primary's data dir refuses to become a follower's, and vice versa.
	pdir := t.TempDir()
	s1, err := New(Options{Model: m, DataDir: pdir, RefitAfter: 4,
		JournalSync: store.SyncPolicy{Mode: store.SyncAlways}})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range observeStream(66, 4) {
		postObserve(t, s1, b)
	}
	waitFor(t, "compaction persists a model", func() bool {
		d, err := store.OpenDir(pdir)
		return err == nil && d.HasModel()
	})
	s1.Close()
	if s, err := New(Options{Follow: pts.URL, DataDir: pdir}); err == nil {
		s.Close()
		t.Error("follower tailed over a primary's data dir")
	}

	fdir := t.TempDir()
	f, err := New(Options{Follow: pts.URL, DataDir: fdir, PollWait: 50 * time.Millisecond,
		JournalSync: store.SyncPolicy{Mode: store.SyncAlways}})
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if s, err := New(Options{Model: m, DataDir: fdir}); err == nil {
		s.Close()
		t.Error("primary started over a follower's data dir")
	}
}

// TestJournalStreamEndpoint exercises the wire protocol directly: identity
// mismatches and out-of-window positions answer 410, a caught-up poll
// returns an empty 200 after the wait, and frames carry the stream headers.
func TestJournalStreamEndpoint(t *testing.T) {
	m := fitModel(t, 7)
	p, pts := testServer(t, Options{Model: m, DataDir: t.TempDir(),
		JournalSync: store.SyncPolicy{Mode: store.SyncAlways}})
	for _, b := range observeStream(67, 3) {
		postObserve(t, p, b)
	}

	get := func(query string) *http.Response {
		resp, err := http.Get(pts.URL + "/v1/journal?" + query)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	epoch := p.repl.epoch
	gen := p.repl.gen.Load()
	id := func(e, g uint64) string {
		return "epoch=" + uintStr(e) + "&gen=" + uintStr(g)
	}

	// Happy path: frames from 0 under the current identity.
	resp := get("after=0&" + id(epoch, gen))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Ptucker-Last-Seq"); got != uintStr(p.AppliedSeq()) {
		t.Fatalf("Last-Seq %q, want %d", got, p.AppliedSeq())
	}

	// Wrong identity → 410.
	if resp := get("after=0&" + id(epoch, gen+1)); resp.StatusCode != http.StatusGone {
		t.Fatalf("stale gen: %d, want 410", resp.StatusCode)
	}
	if resp := get("after=0&" + id(epoch+1, gen)); resp.StatusCode != http.StatusGone {
		t.Fatalf("stale epoch: %d, want 410", resp.StatusCode)
	}
	// Ahead of the applied sequence → 410.
	if resp := get("after=99&" + id(epoch, gen)); resp.StatusCode != http.StatusGone {
		t.Fatalf("future seq: %d, want 410", resp.StatusCode)
	}
	// Caught up with a short wait → empty 200.
	resp = get("after=" + uintStr(p.AppliedSeq()) + "&wait=10ms&" + id(epoch, gen))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("caught-up poll: %d", resp.StatusCode)
	}
	buf := make([]byte, 1)
	if n, _ := resp.Body.Read(buf); n != 0 {
		t.Fatal("caught-up poll returned frames")
	}

	// A memory-only server has no stream to offer.
	mem, mts := testServer(t, Options{Model: fitModel(t, 8)})
	_ = mem
	if resp, err := http.Get(mts.URL + "/v1/journal/bootstrap"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("memory-only bootstrap: %d, want 503", resp.StatusCode)
		}
	}
}

func uintStr(v uint64) string { return strconv.FormatUint(v, 10) }
